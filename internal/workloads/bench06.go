package workloads

import "prefetchlab/internal/isa"

// The 12 single-threaded benchmarks of Table I. Each builder comments the
// behaviour it reproduces and the Table I coverage figure it targets.

func init() {
	register(Spec{Name: "gcc", Build: buildGCC,
		Desc: "mixed: three strided IR/data streams plus symbol-table pointer chasing and hash gathers (~66% stride coverage)"})
	register(Spec{Name: "libquantum", Build: buildLibquantum,
		Desc: "pure streaming over the quantum register, sub-line strides, read-modify-write (99.9% coverage, big prefetch win, NT candidate)"})
	register(Spec{Name: "lbm", Build: buildLBM,
		Desc: "lattice-Boltzmann stencil streams: leading-edge reads plus a store stream (98.5% coverage, NT candidate)"})
	register(Spec{Name: "mcf", Build: buildMCF,
		Desc: "network simplex: strided arc scan (prefetchable) against node pointer chasing and gathers (~36% coverage)"})
	register(Spec{Name: "omnetpp", Build: buildOmnetpp,
		Desc: "discrete event simulation: dominant heap pointer chasing, tiny strided component (9% coverage)"})
	register(Spec{Name: "soplex", Build: buildSoplex,
		Desc: "sparse LP: strided value/column-index streams plus irregular solution-vector gathers (~53% coverage)"})
	register(Spec{Name: "astar", Build: buildAstar,
		Desc: "path finding: strided map scan against open-list pointer chasing (~26% coverage)"})
	register(Spec{Name: "xalan", Build: buildXalan,
		Desc: "XSLT: DOM pointer chasing and hash gathers, negligible strided work (3% coverage, high prefetch OH)"})
	register(Spec{Name: "leslie3d", Build: buildLeslie3d,
		Desc: "CFD stencil: three leading-edge read streams with trailing re-reads (94% coverage, NT candidate)"})
	register(Spec{Name: "GemsFDTD", Build: buildGemsFDTD,
		Desc: "FDTD stencil: unit-stride and plane-stride streams plus a store stream (84% coverage)"})
	register(Spec{Name: "milc", Build: buildMilc,
		Desc: "lattice QCD: two 96 B-stride su3 streams, compute heavy (96% coverage)"})
	register(Spec{Name: "cigar", Build: buildCigar,
		Desc: "genetic algorithm: short strided gene bursts at random chromosome bases that mistrain stride prefetchers, plus an LLC-resident case library"})
}

// buildGCC models gcc: compilation passes walk several medium IR arrays in
// order while chasing symbol-table pointers and probing hash tables. The
// three strided streams carry roughly 60 % of the L1 misses, matching the
// 65.7 % stride coverage of Table I.
func buildGCC(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("gcc")
	sizeA := in.scaleBytes(768<<10, 64)
	sizeB := in.scaleBytes(768<<10, 64)
	sizeC := in.scaleBytes(768<<10, 64)
	arenaA := b.Arena(sizeA)
	arenaB := b.Arena(sizeB)
	arenaC := b.Arena(sizeC)
	chaseReg := b.Backed("symtab", 1<<20)
	start := initChase(b, chaseReg, rng(in, "gcc"))
	gatherArena := b.Arena(1 << 20)

	ra, rb, rc := b.Reg(), b.Reg(), b.Reg()
	va, vb, vc := b.Reg(), b.Reg(), b.Reg()
	ptr := b.Reg()
	g := newLCG(b, in.seed("gcc-lcg"))
	gv := b.Reg()

	g.setBase(b, gatherArena)
	b.MovI(ptr, int64(start))
	inner := int64(sizeC / 64) // bounded by the smallest stream
	passes := in.itersMin(14, 2)
	b.Loop(passes, func() {
		b.MovI(ra, int64(arenaA))
		b.MovI(rb, int64(arenaB))
		b.MovI(rc, int64(arenaC))
		b.Loop(inner, func() {
			b.Load(va, ra, 0)
			b.AddI(ra, 64)
			b.Load(vb, rb, 0)
			b.AddI(rb, 64)
			b.Load(vc, rc, 0)
			b.AddI(rc, 64)
			chase(b, ptr)
			g.gather(b, gv, po2Lines(1<<20))
			b.Compute(14)
		})
	})
	return b.Program()
}

// buildLibquantum models libquantum: every gate applies a read-modify-write
// sweep over the whole quantum register. The sweep is unrolled over half a
// cache line, so only the first load of each group can miss — giving the
// 99.9 % coverage and the large speedup of Figure 4, and (with no re-use
// out of L2/LLC between sweeps) a clean cache-bypassing candidate.
func buildLibquantum(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("libquantum")
	size := in.scaleBytes(12<<20, 256)
	reg := b.Arena(size)
	// Gate tables re-read between register sweeps: LLC-resident unless the
	// register stream pollutes the LLC — the data cache bypassing retains
	// (§VI-B), turning into Figure 5's below-baseline traffic.
	sideSize := uint64(3 << 20)
	side := b.Arena(sideSize)

	r := b.Reg()
	e0, e1, e2, e3 := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	g := newLCG(b, in.seed("libquantum-side"))
	sv := b.Reg()
	quarters := int64(4)
	inner := int64(size/32) / quarters // 32 B per unrolled group
	sideGathers := int64(sideSize / 64)
	passes := in.itersMin(2, 2)
	g.setBase(b, side)
	b.Loop(passes, func() {
		b.MovI(r, int64(reg))
		b.Loop(quarters, func() {
			b.Loop(inner, func() {
				b.Load(e0, r, 0)
				b.Load(e1, r, 8)
				b.Load(e2, r, 16)
				b.Load(e3, r, 24)
				b.Compute(42)
				b.Store(e0, r, 0)
				b.AddI(r, 32)
			})
			// Gate-table probes: irregular, so never prefetched or bypassed;
			// they re-use the side table out of the LLC only when the
			// register stream does not thrash it.
			b.Loop(sideGathers, func() {
				g.gather(b, sv, po2Lines(3<<20))
				b.Compute(6)
			})
		})
	})
	return b.Program()
}

// buildLBM models lbm: the collide-stream kernel reads the distribution
// grid at a leading edge and writes the destination grid, both at line
// stride. Only the leading load misses, so prefetching it covers ~98 % of
// the load misses; grid sweeps never re-use data from L2/LLC (NT).
func buildLBM(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("lbm")
	size := in.scaleBytes(10<<20, 256)
	src := b.Arena(size + 4096) // margin for the leading-edge reads
	dst := b.Arena(size)
	// Geometry/obstacle table re-read between grid chunks (see libquantum).
	sideSize := uint64(3 << 20)
	side := b.Arena(sideSize)

	rs, rd := b.Reg(), b.Reg()
	v0, v1, v2 := b.Reg(), b.Reg(), b.Reg()
	g := newLCG(b, in.seed("lbm-side"))
	sv := b.Reg()
	quarters := int64(4)
	inner := int64(size/64) / quarters
	sideGathers := int64(sideSize / 64)
	passes := in.itersMin(3, 2)
	g.setBase(b, side)
	b.Loop(passes, func() {
		b.MovI(rs, int64(src))
		b.MovI(rd, int64(dst))
		b.Loop(quarters, func() {
			b.Loop(inner, func() {
				b.Load(v0, rs, 128) // leading edge: the only missing load
				b.Load(v1, rs, 64)
				b.Load(v2, rs, 0)
				b.Compute(140)
				b.Store(v0, rd, 0)
				b.AddI(rs, 64)
				b.AddI(rd, 64)
			})
			// Obstacle-map probes: irregular re-use the bypassing retains.
			b.Loop(sideGathers, func() {
				g.gather(b, sv, po2Lines(3<<20))
				b.Compute(6)
			})
		})
	})
	return b.Program()
}

// buildMCF models mcf: the network-simplex price phase scans the arc array
// in order (prefetchable) but follows node pointers and probes node state
// irregularly — two irregular references per strided one, matching the
// 36 % coverage of Table I.
func buildMCF(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("mcf")
	arcBytes := in.scaleBytes(16<<20, 64)
	arcs := b.Arena(arcBytes)
	nodesReg := b.Backed("nodes", 1<<20)
	nodes2Reg := b.Backed("nodes2", 1<<20)
	start := initChase(b, nodesReg, rng(in, "mcf"))
	start2 := initChase(b, nodes2Reg, rng(in, "mcf2"))
	stateArena := b.Arena(2 << 20)

	ra, arc := b.Reg(), b.Reg()
	ptr, ptr2 := b.Reg(), b.Reg()
	g := newLCG(b, in.seed("mcf-lcg"))
	sv := b.Reg()
	// Hot "stack" data: the short-reuse references that give mcf its
	// characteristic average MRC (Figure 3) — mostly L1 hits.
	hot := b.Arena(4 << 10)
	rh, hv := b.Reg(), b.Reg()

	g.setBase(b, stateArena)
	b.MovI(ptr, int64(start))
	b.MovI(ptr2, int64(start2))
	inner := int64(arcBytes / 64)
	passes := in.itersMin(2, 2)
	b.Loop(passes, func() {
		b.MovI(ra, int64(arcs))
		b.Loop(inner, func() {
			b.Load(arc, ra, 0) // strided arc scan
			b.AddI(ra, 64)
			// Two independent node chains: the MLP a real OoO core extracts
			// from mcf's parallel node updates.
			chase(b, ptr)
			chase(b, ptr2)
			g.gather(b, sv, po2Lines(2<<20))
			b.MovR(rh, ra)
			b.AndI(rh, 511)
			b.AddI(rh, int64(hot))
			b.Load(hv, rh, 0)
			b.Compute(36)
		})
	})
	return b.Program()
}

// buildOmnetpp models omnetpp: the event heap is walked by pointer, two
// dependent dereferences per event, with a small strided statistics sweep.
// Only the strided component (≈6 % of L1 misses) is stride-prefetchable —
// Table I reports 9 % coverage despite MDDLI identifying 89 % of misses.
func buildOmnetpp(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("omnetpp")
	heapReg := b.Backed("heap", 4<<20)
	start := initChase(b, heapReg, rng(in, "omnetpp"))
	stats := b.Arena(in.scaleBytes(512<<10, 64))

	ptr := b.Reg()
	rs, sv := b.Reg(), b.Reg()
	statWords := int64(in.scaleBytes(512<<10, 64) / 8)
	b.MovI(ptr, int64(start))
	outer := in.itersMin(6, 2)
	b.Loop(outer, func() {
		b.MovI(rs, int64(stats))
		b.Loop(statWords, func() {
			chase(b, ptr)
			chase(b, ptr)
			b.Load(sv, rs, 0)
			b.AddI(rs, 8)
			b.Compute(10)
		})
	})
	return b.Program()
}

// buildSoplex models soplex: sparse matrix-vector work reads a 64 B-stride
// value stream and an 8 B-stride column-index stream, then gathers from the
// solution vector. The two strided streams carry ~53 % of the L1 misses
// (Table I: 53.2 %).
func buildSoplex(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("soplex")
	valBytes := in.scaleBytes(12<<20, 64)
	vals := b.Arena(valBytes)
	cols := b.Arena(valBytes / 8)
	vec := b.Arena(2 << 20)

	rv, rc := b.Reg(), b.Reg()
	val, col := b.Reg(), b.Reg()
	g := newLCG(b, in.seed("soplex-lcg"))
	x := b.Reg()

	g.setBase(b, vec)
	inner := int64(valBytes / 64)
	passes := in.itersMin(2, 2)
	b.Loop(passes, func() {
		b.MovI(rv, int64(vals))
		b.MovI(rc, int64(cols))
		b.Loop(inner, func() {
			b.Load(val, rv, 0)
			b.AddI(rv, 64)
			b.Load(col, rc, 0)
			b.AddI(rc, 8)
			g.gather(b, x, po2Lines(2<<20))
			b.Compute(55)
		})
	})
	return b.Program()
}

// buildAstar models astar: the map is scanned at line stride while the open
// list is chased three pointers deep per step — one strided reference in
// four, matching the 26 % coverage of Table I.
func buildAstar(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("astar")
	mapBytes := in.scaleBytes(8<<20, 64)
	grid := b.Arena(mapBytes)
	listReg := b.Backed("openlist", 4<<20)
	start := initChase(b, listReg, rng(in, "astar"))

	rg, gv := b.Reg(), b.Reg()
	ptr := b.Reg()
	b.MovI(ptr, int64(start))
	inner := int64(mapBytes / 64)
	passes := in.itersMin(2, 2)
	b.Loop(passes, func() {
		b.MovI(rg, int64(grid))
		b.Loop(inner, func() {
			b.Load(gv, rg, 0)
			b.AddI(rg, 64)
			chase(b, ptr)
			chase(b, ptr)
			chase(b, ptr)
			b.Compute(30)
		})
	})
	return b.Program()
}

// buildXalan models xalan: DOM traversal (pointer chasing) and hash-table
// gathers dominate; a small strided buffer sweep is the only regular work,
// yielding Table I's 3 % coverage and a very high prefetch overhead.
func buildXalan(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("xalan")
	domReg := b.Backed("dom", 8<<20)
	start := initChase(b, domReg, rng(in, "xalan"))
	hash := b.Arena(4 << 20)
	buf := b.Arena(in.scaleBytes(256<<10, 64))

	ptr := b.Reg()
	g := newLCG(b, in.seed("xalan-lcg"))
	hv := b.Reg()
	rb2, bv := b.Reg(), b.Reg()
	bufWords := int64(in.scaleBytes(256<<10, 64) / 8)

	g.setBase(b, hash)
	b.MovI(ptr, int64(start))
	outer := in.itersMin(12, 2)
	b.Loop(outer, func() {
		b.MovI(rb2, int64(buf))
		b.Loop(bufWords, func() {
			chase(b, ptr)
			chase(b, ptr)
			g.gather(b, hv, po2Lines(4<<20))
			b.Load(bv, rb2, 0)
			b.AddI(rb2, 8)
			b.Compute(12)
		})
	})
	return b.Program()
}

// buildLeslie3d models leslie3d: three read streams each miss at their
// leading edge while trailing re-reads hit, so essentially every load miss
// is stride-prefetchable (Table I: 93.9 %); sweeps re-use nothing from
// L2/LLC, making the streams NT candidates.
func buildLeslie3d(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("leslie3d")
	size := in.scaleBytes(8<<20, 256)
	a := b.Arena(size + 4096)
	c := b.Arena(size + 4096)
	d := b.Arena(size + 4096)
	// Boundary-condition tables re-read between chunks (see libquantum).
	sideSize := uint64(3 << 20)
	side := b.Arena(sideSize)

	ra, rc, rd := b.Reg(), b.Reg(), b.Reg()
	v0, v1, v2, v3 := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	g := newLCG(b, in.seed("leslie3d-side"))
	sv := b.Reg()
	quarters := int64(4)
	inner := int64(size/64) / quarters
	sideGathers := int64(sideSize / 64)
	passes := in.itersMin(3, 2)
	g.setBase(b, side)
	b.Loop(passes, func() {
		b.MovI(ra, int64(a))
		b.MovI(rc, int64(c))
		b.MovI(rd, int64(d))
		b.Loop(quarters, func() {
			b.Loop(inner, func() {
				b.Load(v0, ra, 128) // leading edges: the missing loads
				b.Load(v1, rc, 128)
				b.Load(v2, rd, 128)
				b.Load(v3, ra, 0) // trailing re-read: hits
				b.Compute(150)
				b.AddI(ra, 64)
				b.AddI(rc, 64)
				b.AddI(rd, 64)
			})
			// Boundary-table probes: irregular re-use the bypassing retains.
			b.Loop(sideGathers, func() {
				g.gather(b, sv, po2Lines(3<<20))
				b.Compute(6)
			})
		})
	})
	return b.Program()
}

// buildGemsFDTD models GemsFDTD: field updates read the same array at unit
// stride and at plane stride (a second miss stream), read a second field
// and write a third — three of four miss streams are load misses the
// analysis can cover (Table I: 84.1 %).
func buildGemsFDTD(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("GemsFDTD")
	size := in.scaleBytes(8<<20, 64)
	const plane = 64 << 10
	e := b.Arena(size + 2*plane)
	h := b.Arena(size + 4096)
	out := b.Arena(size)

	re, rh, ro := b.Reg(), b.Reg(), b.Reg()
	v0, v1, v2 := b.Reg(), b.Reg(), b.Reg()
	inner := int64(size / 64)
	passes := in.itersMin(2, 2)
	b.Loop(passes, func() {
		b.MovI(re, int64(e))
		b.MovI(rh, int64(h))
		b.MovI(ro, int64(out))
		b.Loop(inner, func() {
			b.Load(v0, re, 0)     // unit-stride stream
			b.Load(v1, re, plane) // plane-stride stream
			b.Load(v2, rh, 0)
			b.Compute(190)
			b.Store(v0, ro, 0) // store stream (RFO misses stay)
			b.AddI(re, 64)
			b.AddI(rh, 64)
			b.AddI(ro, 64)
		})
	})
	return b.Program()
}

// buildMilc models milc: su3 matrix streams walked at 96 B stride (the
// links and color vectors), compute heavy. Both streams are regular, so
// nearly all misses are covered (Table I: 95.9 %).
func buildMilc(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("milc")
	size := in.scaleBytes(12<<20, 96)
	u := b.Arena(size + 4096)
	v := b.Arena(size + 4096)

	ru, rv := b.Reg(), b.Reg()
	a0, a1 := b.Reg(), b.Reg()
	inner := int64(size / 96)
	passes := in.itersMin(3, 2)
	b.Loop(passes, func() {
		b.MovI(ru, int64(u))
		b.MovI(rv, int64(v))
		b.Loop(inner, func() {
			b.Load(a0, ru, 0)
			b.Load(a1, rv, 0)
			b.Compute(150)
			b.AddI(ru, 96)
			b.AddI(rv, 96)
		})
	})
	return b.Program()
}

// buildCigar models cigar: selections jump to random 1 KiB chromosomes and
// sweep their 16 lines at unit stride — short strided bursts that train a
// hardware stride prefetcher and leave it overshooting every burst end
// (the AMD slowdown of Figure 4a), while an LLC-resident case library
// provides the reuse that prefetch pollution destroys. The burst loop's
// trip count caps the software prefetch distance at R/2.
func buildCigar(in Input) (*isa.Program, error) {
	b := isa.NewBuilder("cigar")
	popBytes := uint64(8 << 20) // 8192 chromosomes × 1 KiB
	pop := b.Arena(popBytes)
	library := b.Arena(1 << 20)

	g := newLCG(b, in.seed("cigar-lcg"))
	gl := newLCG(b, in.seed("cigar-lib"))
	rc, lv, sum := b.Reg(), b.Reg(), b.Reg()
	g0, g1, g2, g3 := b.Reg(), b.Reg(), b.Reg(), b.Reg()

	g.setBase(b, pop)
	gl.setBase(b, library)
	chromosomes := int64(popBytes / 2048)
	selections := in.iters(40000)
	b.Loop(selections, func() {
		g.pickAligned(b, chromosomes, 2048)
		b.MovR(rc, g.addr)
		// Fitness evaluation: sum all genes of a 2 KiB chromosome, 4-way
		// unrolled — the loads overlap but the sums consume every value,
		// so uncovered misses stay on the critical path.
		b.Loop(8, func() {
			b.Load(g0, rc, 0)
			b.Load(g1, rc, 64)
			b.Load(g2, rc, 128)
			b.Load(g3, rc, 192)
			b.AddR(sum, g0)
			b.AddR(sum, g1)
			b.AddR(sum, g2)
			b.AddR(sum, g3)
			b.AddI(rc, 256)
			b.Compute(16)
		})
		// Case-library lookups feed the selection decision, so their
		// latency is exposed. The library is hot enough to live in the LLC
		// — until prefetch pollution evicts it, turning these into
		// serialized DRAM accesses (the AMD cigar slowdown of Figure 4a).
		b.Loop(8, func() {
			gl.gather(b, lv, po2Lines(1<<20))
			b.AddR(sum, lv)
			b.Compute(6)
		})
		b.Compute(40)
	})
	return b.Program()
}
