package cpu

import (
	"testing"

	"prefetchlab/internal/cache"
	"prefetchlab/internal/dram"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/memsys"
)

func testHierarchy(t *testing.T, cores int) *memsys.Hierarchy {
	t.Helper()
	h, err := memsys.New(memsys.Config{
		Cores:     cores,
		L1:        cache.Config{Name: "L1", Size: 4 << 10, Assoc: 2},
		L2:        cache.Config{Name: "L2", Size: 16 << 10, Assoc: 4},
		LLC:       cache.Config{Name: "LLC", Size: 64 << 10, Assoc: 8},
		L1Lat:     3,
		L2Lat:     12,
		LLCLat:    30,
		DRAM:      dram.Config{ServiceLat: 200, BytesPerCycle: 4},
		OOOWindow: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// streamProg builds a simple strided loop of n iterations. The offset
// shifts the stream so concurrent instances touch distinct data.
func streamProg(t *testing.T, name string, n int64, offset ...int64) *isa.Compiled {
	t.Helper()
	b := isa.NewBuilder(name)
	r, v := b.Reg(), b.Reg()
	arena := b.Arena(1 << 29)
	var off int64
	if len(offset) > 0 {
		off = offset[0]
	}
	b.MovI(r, int64(arena)+off)
	b.Loop(n, func() {
		b.Load(v, r, 0)
		b.AddI(r, 64)
		b.Compute(8)
	})
	c, err := isa.Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runSingle runs one program the test expects to succeed.
func runSingle(t *testing.T, c *isa.Compiled, h *memsys.Hierarchy) Result {
	t.Helper()
	res, err := RunSingle(c, h)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSingle(t *testing.T) {
	c := streamProg(t, "s", 1000)
	res := runSingle(t, c, testHierarchy(t, 1))
	if res.Cycles <= 0 || res.MemRefs != 1000 {
		t.Fatalf("result = %+v", res)
	}
	if res.Name != "s" {
		t.Fatalf("name = %q", res.Name)
	}
	if res.IPC() <= 0 {
		t.Fatal("IPC must be positive")
	}
	if res.Stats.Loads != 1000 {
		t.Fatalf("loads = %d", res.Stats.Loads)
	}
}

func TestRunSingleDeterministic(t *testing.T) {
	a := runSingle(t, streamProg(t, "s", 2000), testHierarchy(t, 1))
	b := runSingle(t, streamProg(t, "s", 2000), testHierarchy(t, 1))
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", a.Cycles, a.Instructions, b.Cycles, b.Instructions)
	}
}

func TestRunMixRestartsShortPrograms(t *testing.T) {
	long := streamProg(t, "long", 20000)
	short := streamProg(t, "short", 1000)
	rs, err := RunMix(testHierarchy(t, 2), []*isa.Compiled{long, short})
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].Restarts == 0 {
		t.Fatal("short program should restart while the long one runs")
	}
	if rs[0].Restarts != 0 {
		t.Fatal("longest program should not restart")
	}
	if rs[0].Cycles <= rs[1].Cycles {
		t.Fatal("long program should finish last")
	}
}

func TestRunParallelNoRestart(t *testing.T) {
	a := streamProg(t, "a", 8000)
	b := streamProg(t, "b", 1000)
	rs, err := RunParallel(testHierarchy(t, 2), []*isa.Compiled{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Restarts != 0 || rs[1].Restarts != 0 {
		t.Fatal("parallel mode must not restart")
	}
}

func TestContentionSlowsSharers(t *testing.T) {
	solo := runSingle(t, streamProg(t, "a", 30000), testHierarchy(t, 1))
	h := testHierarchy(t, 4)
	progs := []*isa.Compiled{
		streamProg(t, "a", 30000, 0), streamProg(t, "b", 30000, 64<<20),
		streamProg(t, "c", 30000, 128<<20), streamProg(t, "d", 30000, 192<<20),
	}
	rs, err := RunParallel(h, progs)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Cycles <= solo.Cycles {
		t.Fatalf("no contention slowdown: solo %d vs shared %d", solo.Cycles, rs[0].Cycles)
	}
}

func TestMoreProgramsThanCoresErrors(t *testing.T) {
	if _, err := RunMix(testHierarchy(t, 1), []*isa.Compiled{
		streamProg(t, "a", 10), streamProg(t, "b", 10),
	}); err == nil {
		t.Fatal("RunMix accepted more programs than cores")
	}
	if _, err := RunParallel(testHierarchy(t, 1), []*isa.Compiled{
		streamProg(t, "a", 10), streamProg(t, "b", 10),
	}); err == nil {
		t.Fatal("RunParallel accepted more programs than cores")
	}
}
