// Package cpu runs programs on the simulated socket. Cores are in-order:
// one cycle per instruction, loads block for the latency the memory system
// returns, stores and prefetches retire in their single issue cycle.
//
// Multicore execution interleaves the per-core VMs by time: the scheduler
// always advances the core with the smallest local clock to its next memory
// event, so accesses reach the shared LLC and DRAM channel in approximate
// global time order — which is what makes shared-resource contention
// (the paper's subject) emerge naturally.
package cpu

import (
	"fmt"

	"prefetchlab/internal/isa"
	"prefetchlab/internal/memsys"
)

// Result describes one core's execution of one program.
type Result struct {
	Name         string
	Cycles       int64 // time of first completion
	Instructions int64
	MemRefs      int64
	Restarts     int // completed re-runs beyond the first (mix methodology)
	Stats        memsys.CoreStats
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// RunSingle executes one program to completion on core 0 of h and returns
// its result. The hierarchy should be freshly constructed (or reset).
func RunSingle(c *isa.Compiled, h *memsys.Hierarchy) (Result, error) {
	rs, err := run(h, []*isa.Compiled{c}, false)
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// RunMix executes one program per core using the paper's mixed-workload
// methodology (§VII-C): every program runs to completion and then restarts,
// keeping contention alive, until all programs have completed at least once.
// Each result reports the core's *first* completion time and the statistics
// accumulated up to that point.
func RunMix(h *memsys.Hierarchy, progs []*isa.Compiled) ([]Result, error) {
	return run(h, progs, true)
}

// RunParallel executes one program per core, each exactly once (SPMD
// methodology for the parallel workloads of §VII-E). Cores that finish
// early go idle.
func RunParallel(h *memsys.Hierarchy, progs []*isa.Compiled) ([]Result, error) {
	return run(h, progs, false)
}

type coreRun struct {
	vm       *isa.VM
	base     int64 // clock offset accumulated over restarts
	done     bool  // first completion recorded
	finished bool  // no longer scheduled (non-restart mode)
	result   Result
	// snapshot bookkeeping
	instrAtDone int64
	refsAtDone  int64
}

// clock returns the core's absolute time.
func (cr *coreRun) clock() int64 { return cr.base + cr.vm.Cycles() }

func run(h *memsys.Hierarchy, progs []*isa.Compiled, restart bool) ([]Result, error) {
	if len(progs) == 0 {
		return nil, nil
	}
	if len(progs) > h.Config().Cores {
		return nil, fmt.Errorf("cpu: %d programs exceed the machine's %d cores", len(progs), h.Config().Cores)
	}
	cores := make([]coreRun, len(progs))
	// The mixed-workload methodology co-schedules independent program
	// instances: their identical arena layouts must not alias in the shared
	// LLC. SPMD parallel runs (restart off) genuinely share data.
	h.SetPrivateLines(restart)
	for i, p := range progs {
		cores[i].vm = isa.NewVM(p)
		if w := h.Config().OOOWindow; w > 0 {
			cores[i].vm.SetWindow(w)
		}
		cores[i].result.Name = p.Prog.Name
		h.SetCorePCs(i, p.NumPCs())
	}
	remaining := len(progs)
	for remaining > 0 {
		// Advance the core with the smallest clock (linear scan: core
		// counts are tiny).
		ci := -1
		var min int64
		for i := range cores {
			if cores[i].finished {
				continue
			}
			if ci < 0 || cores[i].clock() < min {
				ci = i
				min = cores[i].clock()
			}
		}
		if ci < 0 {
			break
		}
		cr := &cores[ci]
		ev := cr.vm.NextEvent()
		if !ev.Done {
			stall := h.Access(ci, cr.clock(), ev.Ref)
			if ev.Ref.Kind.IsPrefetch() {
				stall = 0
			}
			cr.vm.Complete(stall)
			continue
		}
		// Program completed.
		if !cr.done {
			cr.done = true
			cr.result.Cycles = cr.clock()
			cr.result.Instructions = cr.vm.Instructions()
			cr.result.MemRefs = cr.vm.MemRefs()
			cr.result.Stats = h.CoreStats(ci)
			remaining--
		} else {
			cr.result.Restarts++
		}
		if restart && remaining > 0 {
			cr.base += cr.vm.Cycles()
			cr.vm.Reset()
		} else {
			cr.finished = true
		}
	}
	out := make([]Result, len(cores))
	for i := range cores {
		out[i] = cores[i].result
	}
	return out, nil
}
