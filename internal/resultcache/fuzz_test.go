package resultcache

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

// goldenEntry builds a real disk entry and returns its bytes — the honest
// corpus the fuzzer mutates.
func goldenEntry(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	err := EncodeEntry(&buf, Entry{
		Key:         "figure|fig8|scale=1 seed=42 mixes=100 period=4096 benches=all",
		ContentType: "text/plain; charset=utf-8",
		Body:        []byte("rendered figure body\nrow 1\nrow 2\n"),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzResultCacheReader feeds arbitrary bytes through DecodeEntry: however
// corrupt or truncated the entry, the reader must never panic, and every
// rejection must wrap ErrCorrupt — the typed signal the cache's quarantine
// path keys on (mirrors FuzzCkptReader / FuzzLedgerReader).
func FuzzResultCacheReader(f *testing.F) {
	golden := goldenEntry(f)

	f.Add(golden)                                       // fully valid
	f.Add(golden[:len(golden)-3])                       // truncated payload
	f.Add(golden[:10])                                  // truncated header
	f.Add([]byte{})                                     // empty file
	f.Add([]byte("PFLRSLT1"))                           // magic only
	f.Add([]byte("not an entry"))                       // bad magic
	f.Add(append(append([]byte(nil), golden...), 0xAA)) // trailing garbage
	flipped := append([]byte(nil), golden...)
	flipped[len(flipped)/2] ^= 0xFF // corrupt the payload
	f.Add(flipped)
	huge := append([]byte(nil), golden[:16]...)
	huge[8], huge[9], huge[10], huge[11] = 0xFF, 0xFF, 0xFF, 0xFF // implausible length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEntry(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped error for corrupt input: %v", err)
			}
			return
		}
		// The entry decoded: re-encoding it must produce bytes that decode
		// to the same entry (the roundtrip the disk tier depends on).
		var buf bytes.Buffer
		if err := EncodeEntry(&buf, e); err != nil {
			t.Fatalf("re-encode of a decoded entry: %v", err)
		}
		e2, err := DecodeEntry(buf.Bytes())
		if err != nil {
			t.Fatalf("decode of a just-encoded entry: %v", err)
		}
		if e2.Key != e.Key || e2.ContentType != e.ContentType || !bytes.Equal(e2.Body, e.Body) {
			t.Fatalf("roundtrip mismatch: %+v vs %+v", e, e2)
		}
	})
}

// TestDecodeGoldenOnDisk sanity-checks the corpus builder against a real
// file write, so the fuzz corpus stays representative of disk bytes.
func TestDecodeGoldenOnDisk(t *testing.T) {
	c, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(Entry{Key: "k", ContentType: "text/plain", Body: []byte("v")})
	raw, err := os.ReadFile(c.EntryPath("k"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := DecodeEntry(raw)
	if err != nil {
		t.Fatal(err)
	}
	if e.Key != "k" || string(e.Body) != "v" {
		t.Fatalf("decoded = %+v", e)
	}
}
