// Package resultcache is a content-addressed cache for rendered experiment
// results, keyed by the same configuration fingerprints the checkpoint and
// the cluster shard ledger use. Because every result in this system is a
// deterministic function of its configuration (byte-identical at any
// worker count — the invariant the determinism tests pin), a fingerprint
// key can never serve a stale or wrong body: the cache is a pure
// memoization layer, and a miss recomputes exactly what an uncached run
// would have produced.
//
// Two tiers back the cache:
//
//   - An in-memory LRU bounded by entry count, for the hot set.
//   - An optional disk tier (one file per entry, named by the SHA-256 of
//     the key) written through atomicio's temp+sync+rename so a crash or
//     kill mid-write can never publish a torn entry, using the ckpt record
//     format — magic, length-prefixed gob payload, CRC-32 (IEEE) — so a
//     corrupted or truncated entry is detected by checksum, quarantined
//     (renamed aside for inspection), counted, and recomputed. A corrupt
//     entry is never served.
//
// All methods are nil-safe: a nil *Cache is a disabled cache (every Get
// misses, every Put is dropped), so call sites need no guards.
package resultcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prefetchlab/internal/atomicio"
	"prefetchlab/internal/obs"
)

var magic = []byte("PFLRSLT1")

// ErrCorrupt reports a disk entry that failed verification: bad magic,
// torn length prefix, truncated payload, CRC mismatch, undecodable gob, or
// a key that does not match the file's address. Every corrupt-input
// failure wraps this sentinel; the cache reacts by quarantining the file
// and reporting a miss, never by serving the bytes.
var ErrCorrupt = errors.New("resultcache: corrupt cache entry")

// maxEntry bounds a single entry so a corrupted length prefix cannot make
// the reader attempt a multi-gigabyte allocation (same bound as ckpt).
const maxEntry = 64 << 20

// QuarantineSuffix is appended to a corrupt entry's filename when it is
// moved aside, preserving the evidence for inspection without ever letting
// it satisfy another lookup.
const QuarantineSuffix = ".quarantine"

// entryExt is the disk-entry filename extension; only files carrying it
// are treated (and garbage-collected) as cache entries.
const entryExt = ".rc"

// Entry is one cached rendering: the full response body plus its content
// type, addressed by the content key.
type Entry struct {
	Key         string
	ContentType string
	Body        []byte
}

// payload is the gob wire form of an Entry.
type payload struct {
	Key         string
	ContentType string
	Body        []byte
}

// EncodeEntry serializes e in the disk-entry format:
//
//	magic "PFLRSLT1" | u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// where payload is the gob encoding of the entry. The format mirrors the
// ckpt record layout so the same corruption taxonomy (torn tail, bad CRC,
// implausible length) applies.
func EncodeEntry(w io.Writer, e Entry) error {
	var p bytes.Buffer
	if err := gob.NewEncoder(&p).Encode(payload(e)); err != nil {
		return fmt.Errorf("resultcache: encoding entry: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(magic)
	var prefix [8]byte
	binary.LittleEndian.PutUint32(prefix[0:4], uint32(p.Len()))
	binary.LittleEndian.PutUint32(prefix[4:8], crc32.ChecksumIEEE(p.Bytes()))
	buf.Write(prefix[:])
	buf.Write(p.Bytes())
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("resultcache: writing entry: %w", err)
	}
	return nil
}

// DecodeEntry verifies and decodes one disk entry. Every failure wraps
// ErrCorrupt; arbitrary input never panics (FuzzResultCacheReader pins
// this).
func DecodeEntry(data []byte) (Entry, error) {
	if len(data) < len(magic)+8 {
		return Entry{}, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if !bytes.Equal(data[:len(magic)], magic) {
		return Entry{}, fmt.Errorf("%w: not a cache entry (bad magic)", ErrCorrupt)
	}
	rest := data[len(magic):]
	plen := binary.LittleEndian.Uint32(rest[0:4])
	sum := binary.LittleEndian.Uint32(rest[4:8])
	if plen > maxEntry {
		return Entry{}, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, plen)
	}
	body := rest[8:]
	if uint32(len(body)) < plen {
		return Entry{}, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrCorrupt, len(body), plen)
	}
	if uint32(len(body)) > plen {
		return Entry{}, fmt.Errorf("%w: %d trailing bytes after payload", ErrCorrupt, uint32(len(body))-plen)
	}
	if crc32.ChecksumIEEE(body) != sum {
		return Entry{}, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	var p payload
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&p); err != nil {
		return Entry{}, fmt.Errorf("%w: undecodable payload: %w", ErrCorrupt, err)
	}
	return Entry(p), nil
}

// Config assembles a Cache.
type Config struct {
	// MaxEntries bounds the in-memory LRU tier; <= 0 selects 128.
	MaxEntries int
	// Dir, when non-empty, enables the disk tier (created if missing).
	Dir string
	// MaxDiskBytes bounds the disk tier; past it the oldest entries are
	// garbage-collected after each write. <= 0 selects 256 MiB.
	MaxDiskBytes int64
	// Obs, when non-nil, tallies hits and misses into the "result" cache
	// family (joining the single-flight caches on
	// prefetchlab_cache_requests_total). May be nil.
	Obs *obs.Obs
}

// Cache is the two-tier result cache. Create with New; a nil *Cache is a
// valid disabled cache.
type Cache struct {
	maxEntries   int
	dir          string
	maxDiskBytes int64
	obs          *obs.Obs

	mu    sync.Mutex
	mem   map[string]*memEntry
	order []string // LRU order, least recent first

	hits        atomic.Int64
	misses      atomic.Int64
	memHits     atomic.Int64
	diskHits    atomic.Int64
	corrupt     atomic.Int64
	quarantined atomic.Int64
	evictMem    atomic.Int64
	evictDisk   atomic.Int64
}

type memEntry struct {
	e Entry
}

// New builds a Cache, creating the disk directory when one is configured.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 128
	}
	if cfg.MaxDiskBytes <= 0 {
		cfg.MaxDiskBytes = 256 << 20
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
	}
	return &Cache{
		maxEntries:   cfg.MaxEntries,
		dir:          cfg.Dir,
		maxDiskBytes: cfg.MaxDiskBytes,
		obs:          cfg.Obs,
		mem:          make(map[string]*memEntry),
	}, nil
}

// Enabled reports whether the cache exists (nil caches are disabled).
func (c *Cache) Enabled() bool { return c != nil }

// DiskDir returns the disk-tier directory ("" when memory-only or nil).
func (c *Cache) DiskDir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// EntryPath returns the disk filename serving key: the hex SHA-256 of the
// key, so arbitrary key bytes never escape into the filesystem namespace.
func (c *Cache) EntryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:])+entryExt)
}

// Get looks key up: memory first, then disk (promoting a disk hit into
// memory). A corrupt disk entry is quarantined, counted, and reported as a
// miss. The hit/miss lands on the "result" cache family in obs.
func (c *Cache) Get(key string) (Entry, bool) {
	if c == nil {
		return Entry{}, false
	}
	start := time.Now()
	e, ok := c.get(key)
	c.obs.CacheDone("result", key, ok, start, time.Now())
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

func (c *Cache) get(key string) (Entry, bool) {
	c.mu.Lock()
	if me, ok := c.mem[key]; ok {
		c.touchLocked(key)
		c.mu.Unlock()
		c.memHits.Add(1)
		return me.e, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return Entry{}, false
	}
	path := c.EntryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, false // not on disk (or unreadable): plain miss
	}
	e, err := DecodeEntry(data)
	if err == nil && e.Key != key {
		err = fmt.Errorf("%w: entry key %q does not match lookup %q", ErrCorrupt, e.Key, key)
	}
	if err != nil {
		c.quarantine(path)
		return Entry{}, false
	}
	c.insertMem(e)
	c.diskHits.Add(1)
	return e, true
}

// quarantine moves a corrupt entry aside so it can never satisfy another
// lookup, preserving the bytes for inspection. If the rename fails the
// file is removed instead — serving it again is the one unacceptable
// outcome.
func (c *Cache) quarantine(path string) {
	c.corrupt.Add(1)
	if err := os.Rename(path, path+QuarantineSuffix); err != nil {
		// lint:allow errwrap (best-effort cleanup: the entry is already counted corrupt and will be recomputed; nothing actionable remains)
		_ = os.Remove(path)
		return
	}
	c.quarantined.Add(1)
}

// Put stores e in both tiers. Disk failures are silent by design: the
// cache is an optimization, and the caller has already produced the
// result.
func (c *Cache) Put(e Entry) {
	if c == nil || e.Key == "" {
		return
	}
	c.insertMem(e)
	if c.dir == "" {
		return
	}
	err := atomicio.WriteFile(c.EntryPath(e.Key), func(w io.Writer) error {
		return EncodeEntry(w, e)
	})
	if err != nil {
		return
	}
	c.gcDisk()
}

// insertMem adds e to the memory tier, evicting the least recently used
// entries past the bound.
func (c *Cache) insertMem(e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mem[e.Key]; ok {
		c.mem[e.Key].e = e
		c.touchLocked(e.Key)
		return
	}
	c.mem[e.Key] = &memEntry{e: e}
	c.order = append(c.order, e.Key)
	for len(c.mem) > c.maxEntries {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.mem, victim)
		c.evictMem.Add(1)
	}
}

// touchLocked moves key to the most-recent end of the LRU order.
func (c *Cache) touchLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

// gcDisk trims the disk tier back under its byte bound, oldest entries
// (by modification time, then name for determinism) first. Stray
// atomicio temp files older than an hour are swept too, so a crash
// mid-write cannot leak space forever.
func (c *Cache) gcDisk() {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type fileInfo struct {
		name string
		size int64
		mod  time.Time
	}
	var files []fileInfo
	var total int64
	for _, de := range entries {
		name := de.Name()
		info, err := de.Info()
		if err != nil {
			continue
		}
		if strings.Contains(name, entryExt+".tmp-") {
			if time.Since(info.ModTime()) > time.Hour {
				// lint:allow errwrap (best-effort sweep of an orphaned temp file; a failure just means the next GC retries)
				_ = os.Remove(filepath.Join(c.dir, name))
			}
			continue
		}
		if !strings.HasSuffix(name, entryExt) {
			continue
		}
		files = append(files, fileInfo{name, info.Size(), info.ModTime()})
		total += info.Size()
	}
	if total <= c.maxDiskBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod)
		}
		return files[i].name < files[j].name
	})
	for _, f := range files {
		if total <= c.maxDiskBytes {
			return
		}
		if err := os.Remove(filepath.Join(c.dir, f.name)); err != nil {
			continue
		}
		total -= f.size
		c.evictDisk.Add(1)
	}
}

// Stats is a point-in-time cache census, exported on /healthz and sampled
// onto the Prometheus result-cache series.
type Stats struct {
	Hits        int64  `json:"hits"`
	Misses      int64  `json:"misses"`
	MemHits     int64  `json:"mem_hits"`
	DiskHits    int64  `json:"disk_hits"`
	Corrupt     int64  `json:"corrupt"`
	Quarantined int64  `json:"quarantined"`
	EvictMem    int64  `json:"evict_mem"`
	EvictDisk   int64  `json:"evict_disk"`
	MemEntries  int    `json:"mem_entries"`
	MemBytes    int64  `json:"mem_bytes"`
	DiskEntries int    `json:"disk_entries"`
	DiskBytes   int64  `json:"disk_bytes"`
	Dir         string `json:"dir,omitempty"`
}

// Stats reports the cache's counters and current tier sizes. Nil caches
// report zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		MemHits:     c.memHits.Load(),
		DiskHits:    c.diskHits.Load(),
		Corrupt:     c.corrupt.Load(),
		Quarantined: c.quarantined.Load(),
		EvictMem:    c.evictMem.Load(),
		EvictDisk:   c.evictDisk.Load(),
		Dir:         c.dir,
	}
	c.mu.Lock()
	s.MemEntries = len(c.mem)
	for _, me := range c.mem {
		s.MemBytes += int64(len(me.e.Body))
	}
	c.mu.Unlock()
	if c.dir != "" {
		if entries, err := os.ReadDir(c.dir); err == nil {
			for _, de := range entries {
				if !strings.HasSuffix(de.Name(), entryExt) {
					continue
				}
				if info, err := de.Info(); err == nil {
					s.DiskEntries++
					s.DiskBytes += info.Size()
				}
			}
		}
	}
	return s
}
