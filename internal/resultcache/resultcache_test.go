package resultcache

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prefetchlab/internal/obs"
)

func newMem(t *testing.T, maxEntries int) *Cache {
	t.Helper()
	c, err := New(Config{MaxEntries: maxEntries})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newDisk(t *testing.T, maxDiskBytes int64) *Cache {
	t.Helper()
	c, err := New(Config{MaxEntries: 4, Dir: t.TempDir(), MaxDiskBytes: maxDiskBytes})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c.Enabled() {
		t.Fatal("nil cache reports enabled")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(Entry{Key: "k", Body: []byte("v")}) // must not panic
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
	if c.DiskDir() != "" {
		t.Fatal("nil cache has a disk dir")
	}
}

func TestMemoryRoundtrip(t *testing.T) {
	c := newMem(t, 4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(Entry{Key: "a", ContentType: "text/plain", Body: []byte("hello")})
	e, ok := c.Get("a")
	if !ok || string(e.Body) != "hello" || e.ContentType != "text/plain" {
		t.Fatalf("Get = %+v, %v", e, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.MemHits != 1 || s.MemEntries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	c := newMem(t, 2)
	c.Put(Entry{Key: "a", Body: []byte("1")})
	c.Put(Entry{Key: "b", Body: []byte("2")})
	if _, ok := c.Get("a"); !ok { // touch a: b is now LRU
		t.Fatal("a evicted early")
	}
	c.Put(Entry{Key: "c", Body: []byte("3")}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived past the LRU bound")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) was evicted")
	}
	if got := c.Stats().EvictMem; got != 1 {
		t.Fatalf("EvictMem = %d, want 1", got)
	}
}

func TestDiskRoundtripAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Config{MaxEntries: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("figure body bytes")
	c1.Put(Entry{Key: "fig|scale=1", ContentType: "text/plain", Body: body})

	// A fresh instance over the same dir (daemon restart) serves the entry
	// from disk, byte-identical.
	c2, err := New(Config{MaxEntries: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c2.Get("fig|scale=1")
	if !ok || !bytes.Equal(e.Body, body) || e.ContentType != "text/plain" {
		t.Fatalf("disk Get = %+v, %v", e, ok)
	}
	s := c2.Stats()
	if s.DiskHits != 1 || s.DiskEntries != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The disk hit was promoted: the next Get is a memory hit.
	if _, ok := c2.Get("fig|scale=1"); !ok {
		t.Fatal("promoted entry missing")
	}
	if c2.Stats().MemHits != 1 {
		t.Fatalf("promotion did not land in memory: %+v", c2.Stats())
	}
}

// TestCorruptEntryQuarantined pins the cache-integrity invariant: a disk
// entry damaged in any way is CRC/format-detected, quarantined, counted,
// and reported as a miss so the caller recomputes — never served.
func TestCorruptEntryQuarantined(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bit_flip_payload", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }},
		{"bit_flip_header", func(b []byte) []byte { b[9] ^= 0x01; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"truncated_header", func(b []byte) []byte { return b[:10] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bad_magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"trailing_garbage", func(b []byte) []byte { return append(b, 0xAA) }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			c := newDisk(t, 0)
			body := []byte("precious result")
			c.Put(Entry{Key: "k", Body: body})
			path := c.EntryPath("k")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, m.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			// Fresh instance (no memory tier copy): the damaged entry must
			// miss, be counted corrupt, and move to quarantine.
			c2, err := New(Config{MaxEntries: 4, Dir: c.DiskDir()})
			if err != nil {
				t.Fatal(err)
			}
			if e, ok := c2.Get("k"); ok {
				t.Fatalf("corrupt entry served: %+v", e)
			}
			s := c2.Stats()
			if s.Corrupt != 1 {
				t.Fatalf("Corrupt = %d, want 1 (%+v)", s.Corrupt, s)
			}
			if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("corrupt entry still addressable: %v", err)
			}
			if s.Quarantined == 1 {
				if _, err := os.Stat(path + QuarantineSuffix); err != nil {
					t.Fatalf("quarantine file missing: %v", err)
				}
			}

			// Recompute + Put heals the slot; the quarantined bytes stay put.
			c2.Put(Entry{Key: "k", Body: body})
			e, ok := c2.Get("k")
			if !ok || !bytes.Equal(e.Body, body) {
				t.Fatalf("healed Get = %+v, %v", e, ok)
			}
		})
	}
}

// TestKeyMismatchQuarantined: an entry renamed to another key's address
// (or a SHA collision, cosmically) must not be served under the wrong key.
func TestKeyMismatchQuarantined(t *testing.T) {
	c := newDisk(t, 0)
	c.Put(Entry{Key: "a", Body: []byte("body-a")})
	if err := os.Rename(c.EntryPath("a"), c.EntryPath("b")); err != nil {
		t.Fatal(err)
	}
	c2, err := New(Config{MaxEntries: 4, Dir: c.DiskDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get("b"); ok {
		t.Fatal("entry served under the wrong key")
	}
	if c2.Stats().Corrupt != 1 {
		t.Fatalf("stats = %+v", c2.Stats())
	}
}

// TestKillMidWrite simulates a crash during a disk write: atomicio leaves
// a temp file, never a torn entry. The cache must keep working, the torn
// temp must not satisfy lookups, and old temps get swept by GC.
func TestKillMidWrite(t *testing.T) {
	c := newDisk(t, 0)
	c.Put(Entry{Key: "live", Body: []byte("live body")})

	// A "crash" mid-write: a partial temp file beside the entries, exactly
	// what a killed atomicio.WriteFile leaves behind.
	torn := c.EntryPath("victim") + ".tmp-12345"
	if err := os.WriteFile(torn, []byte("PFLRSLT1 partial garbag"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The victim key was never published: plain miss, no corruption.
	if _, ok := c.Get("victim"); ok {
		t.Fatal("torn temp file served")
	}
	if got := c.Stats().Corrupt; got != 0 {
		t.Fatalf("temp file counted corrupt: %d", got)
	}
	// Live entries are unaffected, and a recompute of the victim lands.
	if _, ok := c.Get("live"); !ok {
		t.Fatal("live entry lost")
	}
	c.Put(Entry{Key: "victim", Body: []byte("recomputed")})
	if e, ok := c.Get("victim"); !ok || string(e.Body) != "recomputed" {
		t.Fatalf("recomputed Get = %+v, %v", e, ok)
	}

	// An hour-old temp is swept by the next GC pass.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(torn, old, old); err != nil {
		t.Fatal(err)
	}
	c.Put(Entry{Key: "trigger-gc", Body: []byte("x")})
	if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file not swept: %v", err)
	}
}

func TestDiskGC(t *testing.T) {
	// Budget holds three ~250-byte entries; the fourth Put drives GC.
	c := newDisk(t, 800)
	big := bytes.Repeat([]byte("x"), 200)
	now := time.Now()
	for i, key := range []string{"old", "mid", "new"} {
		c.Put(Entry{Key: key, Body: big})
		// Distinct mtimes so eviction order is deterministic.
		ts := now.Add(time.Duration(i-3) * time.Minute)
		if err := os.Chtimes(c.EntryPath(key), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	c.Put(Entry{Key: "latest", Body: big}) // drives GC over budget
	s := c.Stats()
	if s.EvictDisk == 0 {
		t.Fatalf("no disk evictions under a %d-byte budget: %+v", 800, s)
	}
	if s.DiskBytes > 800 {
		t.Fatalf("disk tier over budget after GC: %+v", s)
	}
	// The newest write survives; the oldest is gone.
	if _, err := os.Stat(c.EntryPath("latest")); err != nil {
		t.Fatalf("latest entry evicted: %v", err)
	}
	if _, err := os.Stat(c.EntryPath("old")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("oldest entry survived GC: %v", err)
	}
}

func TestObsTallies(t *testing.T) {
	o := &obs.Obs{Stats: obs.NewStats()}
	c, err := New(Config{MaxEntries: 4, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	c.Get("miss")
	c.Put(Entry{Key: "k", Body: []byte("v")})
	c.Get("k")
	counts := o.CacheCounts()
	found := false
	for _, cc := range counts {
		if cc.Cache == "result" {
			found = true
			if cc.Hits != 1 || cc.Misses != 1 {
				t.Fatalf("result cache counts = %+v", cc)
			}
		}
	}
	if !found {
		t.Fatalf("no result cache family in %+v", counts)
	}
}

func TestEntryPathIsSafe(t *testing.T) {
	c := newDisk(t, 0)
	key := "../../etc/passwd\x00|weird key"
	p := c.EntryPath(key)
	if filepath.Dir(p) != filepath.Clean(c.DiskDir()) {
		t.Fatalf("EntryPath escaped the cache dir: %s", p)
	}
	if !strings.HasSuffix(p, entryExt) {
		t.Fatalf("EntryPath missing extension: %s", p)
	}
	c.Put(Entry{Key: key, Body: []byte("v")})
	if e, ok := c.Get(key); !ok || string(e.Body) != "v" {
		t.Fatalf("weird-key roundtrip = %+v, %v", e, ok)
	}
}
