// Package statstack implements the StatStack statistical cache model
// (Eklöv & Hagersten, ISPASS 2010) used by the paper's §IV to turn sparse
// reuse-distance samples into application-level and per-instruction miss
// ratios for arbitrary cache sizes.
//
// Definitions (paper §III/§IV):
//
//   - reuse distance: the number of memory references (to any line) between
//     two consecutive accesses to the same cache line;
//   - stack distance: the number of *unique* cache lines accessed between a
//     line's reuse — the quantity that decides an LRU hit.
//
// StatStack estimates the expected stack distance of a reuse of distance R
// from the sampled reuse distribution alone: an intervening reference at
// distance j before the window's end contributes one unique line iff it is
// the last access to its own line within the window, i.e. iff its own reuse
// distance ≥ j-1. Summing those probabilities over the window,
//
//	sd(R) = Σ_{k=0}^{R-1} P(rd ≥ k)
//
// where P is the sampled reuse-distance survival function (samples whose
// watchpoint never fired — cold misses — count as infinite). A reference
// with reuse distance R then misses in a fully-associative LRU cache of L
// lines iff sd(R) ≥ L. Both the whole-application and per-instruction miss
// ratios fall out by evaluating this predicate over the relevant sample
// subsets, which is what the delinquent-load identification consumes.
package statstack

import (
	"math"
	"sort"

	"prefetchlab/internal/ref"
	"prefetchlab/internal/sampler"
)

// Model is a fitted StatStack model.
type Model struct {
	// all reuse distances, sorted ascending; cold samples are tracked
	// separately (conceptually +∞).
	rds    []int64
	prefix []float64 // prefix[i] = Σ_{j<i} (rds[j]+1)
	cold   int64

	perPC map[ref.PC]*pcSamples
}

type pcSamples struct {
	rds  []int64 // sorted
	cold int64
}

// Build fits a model to a sampling pass's output.
//
// Attribution: a sample pairs a first access (the watchpoint) with the next
// access to the same line. The distance is the *forward* reuse distance of
// the first access — which feeds the global survival function — and the
// *backward* reuse distance of the second access, which is what decides
// whether that second access hits; per-instruction miss ratios therefore
// group samples by the reusing PC. Dangling watchpoints (cold samples)
// enter the global histogram as infinite distances: each line's one
// never-reused last access balances its one compulsory first access, so the
// application-level distributions of forward and backward distances match.
func Build(s *sampler.Samples) *Model {
	m := &Model{perPC: make(map[ref.PC]*pcSamples)}
	m.rds = make([]int64, 0, len(s.Reuse))
	for _, r := range s.Reuse {
		m.rds = append(m.rds, r.Dist)
		ps := m.perPC[r.ReusePC]
		if ps == nil {
			ps = &pcSamples{}
			m.perPC[r.ReusePC] = ps
		}
		ps.rds = append(ps.rds, r.Dist)
	}
	m.cold = int64(len(s.Cold))
	sort.Slice(m.rds, func(i, j int) bool { return m.rds[i] < m.rds[j] })
	m.prefix = make([]float64, len(m.rds)+1)
	for i, rd := range m.rds {
		m.prefix[i+1] = m.prefix[i] + float64(rd+1)
	}
	// lint:allow detrand (each value is sorted independently; no cross-iteration state, so visit order cannot reach result bytes)
	for _, ps := range m.perPC {
		sort.Slice(ps.rds, func(i, j int) bool { return ps.rds[i] < ps.rds[j] })
	}
	return m
}

// Samples returns the number of reuse samples (finite + cold) in the model.
func (m *Model) Samples() int64 { return int64(len(m.rds)) + m.cold }

// PCs returns every instruction with at least one sample.
func (m *Model) PCs() []ref.PC {
	out := make([]ref.PC, 0, len(m.perPC))
	for pc := range m.perPC {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PCSampleCount returns the number of samples (finite + cold) for pc.
func (m *Model) PCSampleCount(pc ref.PC) int64 {
	ps := m.perPC[pc]
	if ps == nil {
		return 0
	}
	return int64(len(ps.rds)) + ps.cold
}

// StackDist estimates the expected stack distance of a reuse distance R:
//
//	sd(R) = Σ_{k=0}^{R-1} P(rd ≥ k) = (Σ_{rd_i < R}(rd_i+1) + R·#{rd_i ≥ R}) / N
//
// computed in O(log n) with prefix sums over the sorted sample set. Cold
// samples count as rd = ∞.
func (m *Model) StackDist(rd int64) float64 {
	n := float64(len(m.rds)) + float64(m.cold)
	if n == 0 {
		return 0
	}
	if rd < 0 {
		return 0
	}
	// idx = number of finite samples with value < rd.
	idx := sort.Search(len(m.rds), func(i int) bool { return m.rds[i] >= rd })
	atLeast := float64(len(m.rds)-idx) + float64(m.cold)
	return (m.prefix[idx] + float64(rd)*atLeast) / n
}

// criticalRD returns the smallest reuse distance whose expected stack
// distance reaches lines (misses in a cache of that many lines). Returns
// math.MaxInt64 if no finite reuse distance can miss.
func (m *Model) criticalRD(lines int64) int64 {
	if lines <= 0 {
		return 0
	}
	lo, hi := int64(0), int64(1)
	// Exponential search for an upper bound.
	for m.StackDist(hi) < float64(lines) {
		if hi > 1<<60 {
			return math.MaxInt64
		}
		hi <<= 1
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if m.StackDist(mid) >= float64(lines) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// missRatioOf computes the miss ratio of a sorted sample subset for a cache
// of the given line count using the model-wide critical reuse distance.
func (m *Model) missRatioOf(rds []int64, cold int64, lines int64) float64 {
	n := float64(len(rds)) + float64(cold)
	if n == 0 {
		return 0
	}
	crit := m.criticalRD(lines)
	var missing float64
	if crit == math.MaxInt64 {
		missing = float64(cold)
	} else {
		idx := sort.Search(len(rds), func(i int) bool { return rds[i] >= crit })
		missing = float64(len(rds)-idx) + float64(cold)
	}
	return missing / n
}

// MissRatio models the whole application's miss ratio in a cache of
// sizeBytes (fully-associative LRU, 64 B lines).
func (m *Model) MissRatio(sizeBytes int64) float64 {
	return m.missRatioOf(m.rds, m.cold, sizeBytes/ref.LineSize)
}

// PCMissRatio models the miss ratio of a single instruction in a cache of
// sizeBytes. ok is false if the instruction has no samples.
func (m *Model) PCMissRatio(pc ref.PC, sizeBytes int64) (mr float64, ok bool) {
	ps := m.perPC[pc]
	if ps == nil || len(ps.rds)+int(ps.cold) == 0 {
		return 0, false
	}
	return m.missRatioOf(ps.rds, ps.cold, sizeBytes/ref.LineSize), true
}

// MRC evaluates the application miss-ratio curve at the given cache sizes
// (bytes).
func (m *Model) MRC(sizes []int64) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = m.MissRatio(s)
	}
	return out
}

// PCMRC evaluates one instruction's miss-ratio curve at the given cache
// sizes (bytes).
func (m *Model) PCMRC(pc ref.PC, sizes []int64) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i], _ = m.PCMissRatio(pc, s)
	}
	return out
}

// StandardSizes returns the cache-size sweep of the paper's Figure 3
// (8 kB … 8 MB, powers of two).
func StandardSizes() []int64 {
	sizes := make([]int64, 0, 11)
	for s := int64(8 << 10); s <= 8<<20; s <<= 1 {
		sizes = append(sizes, s)
	}
	return sizes
}
