package statstack

import (
	"math"
	"testing"
	"testing/quick"

	"prefetchlab/internal/ref"
	"prefetchlab/internal/sampler"
)

// cyclicSamples builds the sample set of a program cycling over n distinct
// lines: every access has reuse distance n-1 (n-1 intervening references)
// and stack distance n-1 (n-1 unique other lines).
func cyclicSamples(n int, count int) *sampler.Samples {
	s := &sampler.Samples{Period: 1}
	for i := 0; i < count; i++ {
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 1, ReusePC: 1, Dist: int64(n - 1)})
	}
	return s
}

func TestStackDistanceCyclic(t *testing.T) {
	// For a cyclic sweep over n lines, sd(rd = n-1) must be ≈ n-1.
	for _, n := range []int{4, 16, 256, 4096} {
		m := Build(cyclicSamples(n, 100))
		got := m.StackDist(int64(n - 1))
		want := float64(n - 1)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("n=%d: sd = %g, want %g", n, got, want)
		}
	}
}

func TestMissRatioCyclicSweep(t *testing.T) {
	// A cyclic sweep over 1024 lines (64 kB) must miss in any cache smaller
	// than 64 kB and hit in any larger cache (fully-associative LRU).
	m := Build(cyclicSamples(1024, 200))
	if mr := m.MissRatio(32 << 10); mr != 1.0 {
		t.Errorf("32k miss ratio = %g, want 1", mr)
	}
	if mr := m.MissRatio(128 << 10); mr != 0.0 {
		t.Errorf("128k miss ratio = %g, want 0", mr)
	}
}

func TestMRCMonotone(t *testing.T) {
	// Any mixture of reuse distances must give a non-increasing MRC.
	f := func(d1, d2, d3 uint16, cold uint8) bool {
		s := &sampler.Samples{}
		for i, d := range []uint16{d1, d2, d3} {
			for j := 0; j < 5; j++ {
				s.Reuse = append(s.Reuse, sampler.ReuseSample{
					PC: ref.PC(i), ReusePC: ref.PC(i), Dist: int64(d),
				})
			}
		}
		for i := 0; i < int(cold%5); i++ {
			s.Cold = append(s.Cold, sampler.ColdSample{PC: 0})
		}
		m := Build(s)
		mrc := m.MRC(StandardSizes())
		for i := 1; i < len(mrc); i++ {
			if mrc[i] > mrc[i-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStackDistMonotoneInRD(t *testing.T) {
	m := Build(cyclicSamples(100, 50))
	prev := -1.0
	for rd := int64(0); rd < 300; rd += 7 {
		sd := m.StackDist(rd)
		if sd < prev {
			t.Fatalf("sd(%d) = %g < sd(prev) = %g", rd, sd, prev)
		}
		if sd > float64(rd) {
			t.Fatalf("sd(%d) = %g exceeds rd (impossible: at most rd unique lines)", rd, sd)
		}
		prev = sd
	}
}

func TestColdSamplesAlwaysMiss(t *testing.T) {
	s := &sampler.Samples{}
	for i := 0; i < 10; i++ {
		s.Cold = append(s.Cold, sampler.ColdSample{PC: 1})
	}
	// Cold-only model: the application MRC must be 1 at every size.
	m := Build(s)
	for _, size := range StandardSizes() {
		if mr := m.MissRatio(size); mr != 1.0 {
			t.Fatalf("cold-only miss ratio at %d = %g, want 1", size, mr)
		}
	}
}

func TestPerPCAttributionToReuser(t *testing.T) {
	// PC 1 samples whose reuser is PC 2 with short distances, and PC 3
	// reuses with long distances: PC 2 must model as hitting, PC 3 missing.
	s := &sampler.Samples{}
	for i := 0; i < 20; i++ {
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 1, ReusePC: 2, Dist: 4})
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 1, ReusePC: 3, Dist: 1 << 22})
	}
	m := Build(s)
	mr2, ok2 := m.PCMissRatio(2, 64<<10)
	mr3, ok3 := m.PCMissRatio(3, 64<<10)
	if !ok2 || !ok3 {
		t.Fatal("missing per-PC models")
	}
	if mr2 != 0 {
		t.Errorf("short-reuse PC miss ratio = %g, want 0", mr2)
	}
	if mr3 != 1 {
		t.Errorf("long-reuse PC miss ratio = %g, want 1", mr3)
	}
	// The sampled-at PC has no samples of its own.
	if _, ok := m.PCMissRatio(1, 64<<10); ok {
		t.Error("PC 1 should have no backward-distance samples")
	}
}

func TestMixedDistribution(t *testing.T) {
	// 50 % of accesses reuse within 8 lines, 50 % cycle over 64 k lines:
	// small caches show ~50 % miss ratio, a 8 MB cache ~0 %.
	s := &sampler.Samples{}
	for i := 0; i < 100; i++ {
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 1, ReusePC: 1, Dist: 8})
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 2, ReusePC: 2, Dist: 1 << 17})
	}
	m := Build(s)
	if mr := m.MissRatio(64 << 10); math.Abs(mr-0.5) > 0.05 {
		t.Errorf("64k miss ratio = %g, want ≈ 0.5", mr)
	}
	if mr := m.MissRatio(16 << 20); mr > 0.01 {
		t.Errorf("16M miss ratio = %g, want ≈ 0", mr)
	}
}

func TestStandardSizes(t *testing.T) {
	sizes := StandardSizes()
	if sizes[0] != 8<<10 || sizes[len(sizes)-1] != 8<<20 {
		t.Fatalf("sizes = %v", sizes)
	}
	if len(sizes) != 11 {
		t.Fatalf("len = %d, want 11", len(sizes))
	}
}

func TestEmptyModel(t *testing.T) {
	m := Build(&sampler.Samples{})
	if m.MissRatio(64<<10) != 0 {
		t.Error("empty model should report 0 miss ratio")
	}
	if m.StackDist(100) != 0 {
		t.Error("empty model sd should be 0")
	}
	if n := m.Samples(); n != 0 {
		t.Errorf("Samples() = %d, want 0", n)
	}
}

func TestDegenerateCacheSizesMissEverything(t *testing.T) {
	// Any model with samples must report mr = 1 for a cache that holds no
	// whole line: zero size, negative size, or anything below one line.
	m := Build(cyclicSamples(16, 50))
	for _, size := range []int64{0, -64, 1, ref.LineSize - 1} {
		if mr := m.MissRatio(size); mr != 1.0 {
			t.Errorf("miss ratio at size %d = %g, want 1", size, mr)
		}
	}
	// One line of cache is a real (if tiny) cache: the cyclic sweep still
	// misses it, but the call must not panic or go out of range.
	if mr := m.MissRatio(ref.LineSize); mr != 1.0 {
		t.Errorf("miss ratio at one line = %g, want 1", mr)
	}
}

func TestSinglePCModelMatchesGlobal(t *testing.T) {
	// When every sample belongs to one instruction, the per-PC curve is the
	// application curve, and the model knows exactly that one PC. (No cold
	// samples: a dangling watchpoint has no reusing PC, so cold mass is
	// attributed globally, never per-PC.)
	s := &sampler.Samples{}
	for i := 0; i < 40; i++ {
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 7, ReusePC: 7, Dist: 500})
	}
	m := Build(s)
	if pcs := m.PCs(); len(pcs) != 1 || pcs[0] != 7 {
		t.Fatalf("PCs() = %v, want [7]", pcs)
	}
	for _, size := range StandardSizes() {
		pc, ok := m.PCMissRatio(7, size)
		if !ok {
			t.Fatalf("no per-PC model at size %d", size)
		}
		if app := m.MissRatio(size); math.Abs(pc-app) > 1e-12 {
			t.Errorf("size %d: per-PC mr %g != application mr %g", size, pc, app)
		}
	}
}

func TestColdFractionIsMRCFloor(t *testing.T) {
	// Finite reuses hit once the cache is big enough; cold samples never
	// do. The MRC must level off at exactly the cold fraction.
	s := &sampler.Samples{}
	for i := 0; i < 30; i++ {
		s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 1, ReusePC: 1, Dist: 100})
	}
	for i := 0; i < 10; i++ {
		s.Cold = append(s.Cold, sampler.ColdSample{PC: 1})
	}
	m := Build(s)
	if mr := m.MissRatio(64 << 20); math.Abs(mr-0.25) > 1e-12 {
		t.Errorf("large-cache miss ratio = %g, want cold fraction 0.25", mr)
	}
}

func TestPCMRCMonotone(t *testing.T) {
	// Per-instruction curves inherit the global critical distance, so they
	// must be non-increasing too — including with a cold tail.
	s := &sampler.Samples{}
	for _, d := range []int64{10, 1000, 100000} {
		for i := 0; i < 10; i++ {
			s.Reuse = append(s.Reuse, sampler.ReuseSample{PC: 2, ReusePC: 2, Dist: d})
		}
	}
	s.Cold = append(s.Cold, sampler.ColdSample{PC: 2})
	m := Build(s)
	mrc := m.PCMRC(2, StandardSizes())
	for i := 1; i < len(mrc); i++ {
		if mrc[i] > mrc[i-1]+1e-9 {
			t.Fatalf("per-PC MRC not monotone: %v", mrc)
		}
	}
}
