// Package metrics implements the evaluation metrics of the paper's §VII:
// weighted speedup (throughput), fair speedup (harmonic mean), QoS
// degradation, off-chip traffic deltas, and the sorted distribution curves
// of Figures 7 and 9.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// mismatch builds the error the mix metrics return when the two cycle
// slices cannot be compared element-wise. It used to be a panic, which
// would tear down the whole experiment engine from inside a worker; an
// error lets the failing study surface normally through sched.Map.
func mismatch(baseCycles, cycles []int64) error {
	return fmt.Errorf("metrics: mismatched mix sizes: %d baseline vs %d policy apps",
		len(baseCycles), len(cycles))
}

// Speedup returns base/t - 1 (e.g. 0.24 for a 24 % speedup).
func Speedup(baseCycles, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(baseCycles)/float64(cycles) - 1
}

// WeightedSpeedup is the throughput metric of §VII-C: the arithmetic mean
// of the per-application speedups of a mix relative to the same mix without
// prefetching. Returns the mean of base_i/t_i (1.0 = no change), or an
// error if the slices differ in length or are empty.
func WeightedSpeedup(baseCycles, cycles []int64) (float64, error) {
	if len(baseCycles) != len(cycles) || len(cycles) == 0 {
		return 0, mismatch(baseCycles, cycles)
	}
	var s float64
	for i := range cycles {
		if cycles[i] <= 0 {
			continue
		}
		s += float64(baseCycles[i]) / float64(cycles[i])
	}
	return s / float64(len(cycles)), nil
}

// FairSpeedup balances fairness and speedup (§VII-D): the harmonic mean of
// the per-application speedups,
//
//	FS = N / Σ_i (T_i(prefetching) / T_i(base)).
//
// Returns an error if the slices differ in length or are empty.
func FairSpeedup(baseCycles, cycles []int64) (float64, error) {
	if len(baseCycles) != len(cycles) || len(cycles) == 0 {
		return 0, mismatch(baseCycles, cycles)
	}
	var s float64
	for i := range cycles {
		if baseCycles[i] <= 0 {
			continue
		}
		s += float64(cycles[i]) / float64(baseCycles[i])
	}
	if s == 0 {
		return 0, nil
	}
	return float64(len(cycles)) / s, nil
}

// QoS is the cumulative application slowdown of a mix (§VII-D):
//
//	QoS = Σ_i min(0, T_i(base)/T_i(prefetching) − 1)
//
// 0 means no application slowed down; more negative is worse. Returns an
// error if the slices differ in length.
func QoS(baseCycles, cycles []int64) (float64, error) {
	if len(baseCycles) != len(cycles) {
		return 0, mismatch(baseCycles, cycles)
	}
	var q float64
	for i := range cycles {
		if cycles[i] <= 0 {
			continue
		}
		q += math.Min(0, float64(baseCycles[i])/float64(cycles[i])-1)
	}
	return q, nil
}

// Delta returns (v-base)/base, the relative change used for traffic
// increase figures.
func Delta(base, v int64) float64 {
	if base == 0 {
		return 0
	}
	return float64(v-base) / float64(base)
}

// Distribution is a sorted set of per-mix values, the form Figures 7 and 9
// plot ("the graphs are sorted").
type Distribution struct {
	sorted []float64
}

// NewDistribution copies and sorts the values ascending.
func NewDistribution(vals []float64) Distribution {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return Distribution{sorted: s}
}

// Len returns the number of values.
func (d Distribution) Len() int { return len(d.sorted) }

// Values returns the sorted values (do not mutate).
func (d Distribution) Values() []float64 { return d.sorted }

// Quantile returns the value at fraction q ∈ [0,1] of the sorted data.
func (d Distribution) Quantile(q float64) float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return d.sorted[0]
	}
	if q >= 1 {
		return d.sorted[len(d.sorted)-1]
	}
	pos := q * float64(len(d.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(d.sorted) {
		return d.sorted[lo]
	}
	return d.sorted[lo]*(1-frac) + d.sorted[lo+1]*frac
}

// Mean returns the arithmetic mean.
func (d Distribution) Mean() float64 { return Mean(d.sorted) }

// Min returns the smallest value (0 if empty).
func (d Distribution) Min() float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[0]
}

// Max returns the largest value (0 if empty).
func (d Distribution) Max() float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[len(d.sorted)-1]
}

// CountAbove returns how many values exceed x.
func (d Distribution) CountAbove(x float64) int {
	i := sort.SearchFloat64s(d.sorted, x)
	for i < len(d.sorted) && d.sorted[i] == x {
		i++
	}
	return len(d.sorted) - i
}

// Mean returns the arithmetic mean of vals (0 if empty).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// GeoMean returns the geometric mean of (1+v) - 1, suitable for averaging
// speedup deltas.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += math.Log1p(v)
	}
	return math.Expm1(s / float64(len(vals)))
}

// Pct formats a fraction as a signed percentage string.
func Pct(v float64) string { return fmt.Sprintf("%+.1f%%", v*100) }
