package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); got != 1.0 {
		t.Errorf("Speedup = %g, want 1.0", got)
	}
	if got := Speedup(100, 200); got != -0.5 {
		t.Errorf("Speedup = %g, want -0.5", got)
	}
	if got := Speedup(100, 0); got != 0 {
		t.Errorf("Speedup with zero time = %g, want 0", got)
	}
}

// mustWS fails the test on error so the happy-path cases stay one-liners.
func mustWS(t *testing.T, f func([]int64, []int64) (float64, error), base, cyc []int64) float64 {
	t.Helper()
	v, err := f(base, cyc)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	return v
}

func TestWeightedSpeedup(t *testing.T) {
	base := []int64{100, 100, 100, 100}
	if same := mustWS(t, WeightedSpeedup, base, base); same != 1.0 {
		t.Errorf("identity WS = %g", same)
	}
	// One app 2× faster: WS = (2+1+1+1)/4 = 1.25.
	if got := mustWS(t, WeightedSpeedup, base, []int64{50, 100, 100, 100}); got != 1.25 {
		t.Errorf("WS = %g, want 1.25", got)
	}
}

func TestFairSpeedup(t *testing.T) {
	base := []int64{100, 100}
	// Harmonic: one 2× speedup, one 2× slowdown → FS = 2/(0.5+2) = 0.8.
	got := mustWS(t, FairSpeedup, base, []int64{50, 200})
	if math.Abs(got-0.8) > 1e-9 {
		t.Errorf("FS = %g, want 0.8", got)
	}
}

func TestQoS(t *testing.T) {
	base := []int64{100, 100, 100, 100}
	// No slowdowns → 0.
	if got := mustWS(t, QoS, base, []int64{50, 100, 90, 100}); got != 0 {
		t.Errorf("QoS = %g, want 0", got)
	}
	// One app slowed 2×: contribution 100/200 - 1 = -0.5.
	if got := mustWS(t, QoS, base, []int64{50, 200, 100, 100}); math.Abs(got+0.5) > 1e-9 {
		t.Errorf("QoS = %g, want -0.5", got)
	}
}

func TestMismatchedSizes(t *testing.T) {
	// Mismatched or empty mixes used to panic; they must now report errors
	// so a bad study surfaces through the engine instead of crashing it.
	base := []int64{100, 100}
	short := []int64{100}
	for name, f := range map[string]func([]int64, []int64) (float64, error){
		"WeightedSpeedup": WeightedSpeedup,
		"FairSpeedup":     FairSpeedup,
		"QoS":             QoS,
	} {
		if v, err := f(base, short); err == nil {
			t.Errorf("%s(mismatched) = %g, want error", name, v)
		}
	}
	if v, err := WeightedSpeedup(nil, nil); err == nil {
		t.Errorf("WeightedSpeedup(empty) = %g, want error", v)
	}
	if v, err := FairSpeedup(nil, nil); err == nil {
		t.Errorf("FairSpeedup(empty) = %g, want error", v)
	}
	// QoS over zero apps is a valid no-op sum.
	if v, err := QoS(nil, nil); err != nil || v != 0 {
		t.Errorf("QoS(empty) = %g, %v, want 0, nil", v, err)
	}
}

func TestFairLEWeighted(t *testing.T) {
	// Harmonic mean ≤ arithmetic mean of speedups, always.
	f := func(a, b, c, d uint16) bool {
		base := []int64{1000, 1000, 1000, 1000}
		cyc := []int64{int64(a%999) + 1, int64(b%999) + 1, int64(c%999) + 1, int64(d%999) + 1}
		fs, err1 := FairSpeedup(base, cyc)
		ws, err2 := WeightedSpeedup(base, cyc)
		return err1 == nil && err2 == nil && fs <= ws+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDelta(t *testing.T) {
	if got := Delta(100, 150); got != 0.5 {
		t.Errorf("Delta = %g", got)
	}
	if got := Delta(0, 150); got != 0 {
		t.Errorf("Delta from zero = %g", got)
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution([]float64{3, 1, 2})
	if d.Len() != 3 || d.Min() != 1 || d.Max() != 3 {
		t.Fatalf("distribution = %+v", d.Values())
	}
	if got := d.Quantile(0.5); got != 2 {
		t.Errorf("median = %g", got)
	}
	if got := d.Quantile(0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := d.Quantile(1); got != 3 {
		t.Errorf("q1 = %g", got)
	}
	if got := d.Mean(); got != 2 {
		t.Errorf("mean = %g", got)
	}
	if got := d.CountAbove(1.5); got != 2 {
		t.Errorf("CountAbove = %d", got)
	}
	if got := d.CountAbove(3); got != 0 {
		t.Errorf("CountAbove(max) = %d", got)
	}
}

func TestDistributionQuantileMonotone(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
		}
		d := NewDistribution(vals)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := d.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{0.1, 0.1}); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("GeoMean = %g, want 0.1", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.105); got != "+10.5%" {
		t.Errorf("Pct = %q", got)
	}
}
