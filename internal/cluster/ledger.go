package cluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"prefetchlab/internal/ckpt"
)

// The shard ledger is the coordinator's durable memory: one append-only
// record per acked task result, written before the result is considered
// applied. It reuses the internal/ckpt file format (magic, fingerprint
// header, length-prefixed CRC-32 records, torn-tail truncation) under a
// cluster-scoped fingerprint, so a coordinator restarted mid-sweep resumes
// from acked shards only — and a ledger written under one experiment
// configuration can never be replayed into another. Records are
// deduplicated by (batch, index), which is what makes requeued shards
// at-most-once: a task acked by two workers (one slow, one reassigned)
// lands in the ledger once, and the second ack is a no-op.

// ErrLedgerFingerprint reports a ledger written under a different cluster
// configuration. It aliases ckpt.ErrFingerprint (same file format).
var ErrLedgerFingerprint = ckpt.ErrFingerprint

// ErrLedgerCorrupt reports a file that is not a usable ledger: bad magic or
// an unverifiable header. Torn or corrupt records are not errors — they are
// truncated away, like checkpoint records. Aliases ckpt.ErrCorrupt.
var ErrLedgerCorrupt = ckpt.ErrCorrupt

// ledgerVersion is appended to the configuration fingerprint so a plain
// checkpoint file is never mistaken for a shard ledger (and vice versa),
// even though they share the record format.
const ledgerVersion = "ledger=cluster/v1"

// LedgerFingerprint derives the ledger header fingerprint from the
// experiment configuration fingerprint (the same string the checkpoint
// uses, see serve.Fingerprint).
func LedgerFingerprint(configFingerprint string) string {
	return configFingerprint + " " + ledgerVersion
}

// ledgerEntry is the payload of one shard record: which worker produced
// the value, and the gob-encoded task value itself.
type ledgerEntry struct {
	Origin string
	Data   []byte
}

// Ledger is an open shard ledger. Safe for concurrent use.
type Ledger struct {
	f *ckpt.File
}

// OpenLedger opens (or creates) the shard ledger at path.
// configFingerprint is the experiment configuration fingerprint; resuming
// a ledger written under a different configuration fails with
// ErrLedgerFingerprint, and a file that is not a ledger fails with
// ErrLedgerCorrupt. Torn trailing records are truncated away.
func OpenLedger(path, configFingerprint string) (*Ledger, error) {
	f, err := ckpt.Open(path, LedgerFingerprint(configFingerprint))
	if err != nil {
		return nil, fmt.Errorf("cluster: opening shard ledger: %w", err)
	}
	return &Ledger{f: f}, nil
}

// Lookup returns the acked task value and origin worker for (batch, index),
// if present. Records whose entry payload fails to decode are treated as
// absent (the shard is simply dispatched again) — never an error or panic.
func (l *Ledger) Lookup(batch string, index int) (data []byte, origin string, ok bool) {
	raw, ok := l.f.Lookup(ckpt.KindShard, batch, index)
	if !ok {
		return nil, "", false
	}
	var e ledgerEntry
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&e); err != nil {
		return nil, "", false
	}
	return e.Data, e.Origin, true
}

// Record appends one acked task result. Re-recording a (batch, index)
// already in the ledger is a no-op — at-most-once apply under shard
// reassignment.
func (l *Ledger) Record(batch string, index int, origin string, data []byte) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ledgerEntry{Origin: origin, Data: data}); err != nil {
		return fmt.Errorf("cluster: encoding ledger entry: %w", err)
	}
	if err := l.f.Append(ckpt.KindShard, batch, index, buf.Bytes()); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	return nil
}

// Each calls fn for every decodable acked record.
func (l *Ledger) Each(fn func(batch string, index int, origin string, data []byte)) {
	l.f.Each(ckpt.KindShard, func(key string, index int, raw []byte) {
		var e ledgerEntry
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&e); err != nil {
			return
		}
		fn(key, index, e.Origin, e.Data)
	})
}

// Replayed reports how many verified records OpenLedger recovered — the
// acked shards a restarted coordinator resumes from.
func (l *Ledger) Replayed() int { return l.f.Replayed() }

// Appended reports how many records this session has written.
func (l *Ledger) Appended() int { return l.f.Appended() }

// Err returns the first append failure, if any (append failures are sticky
// and the sweep continues; they surface here at shutdown).
func (l *Ledger) Err() error { return l.f.Err() }

// Sync flushes the ledger to stable storage.
func (l *Ledger) Sync() error { return l.f.Sync() }

// Close syncs and closes the ledger. The returned error includes any
// sticky append failure.
func (l *Ledger) Close() error {
	aerr := l.f.Err()
	if cerr := l.f.Close(); cerr != nil {
		return cerr
	}
	if aerr != nil {
		return fmt.Errorf("cluster: ledger append failed during run: %w", aerr)
	}
	return nil
}

// IsLedgerCorrupt reports whether err means "delete the ledger and start
// over" rather than I/O trouble or a configuration mismatch.
func IsLedgerCorrupt(err error) bool { return errors.Is(err, ErrLedgerCorrupt) }
