// Package cluster is the distributed sweep fabric: a fault-tolerant
// coordinator that shards figure sweeps across a fleet of prefetchd
// workers and merges the results through the scheduler's index-ordered
// merge, so the final output is byte-identical to a single-process run at
// any worker count.
//
// The coordinator plugs into the engine as a sched.BatchRunner: every
// scheduler batch is offered to the fleet first, decomposed into shards of
// task indices keyed by the existing deterministic task keys, and any
// index the fleet does not return simply executes locally. Robustness is
// layered:
//
//   - A durable shard ledger (the internal/ckpt record format under a
//     cluster fingerprint) records every acked task result before it is
//     applied, so a restarted coordinator resumes from acked shards only,
//     and at-most-once apply holds under shard reassignment.
//   - Per-worker heartbeats declare a worker dead after a liveness
//     timeout; its in-flight shards are aborted (their dispatch contexts
//     cancel) and requeued to the remaining fleet under a bounded
//     reassignment budget.
//   - Per-worker circuit breakers (internal/serve/breaker) quarantine a
//     flapping worker and admit a half-open probe after a cooldown.
//   - Responses are rejected unless the worker's configuration
//     fingerprint matches the coordinator's and every task value passes
//     its CRC — a corrupt or misconfigured worker causes a requeue, never
//     a wrong figure.
//   - When the fleet is gone (all dead, quarantined, or the budget is
//     spent) shards fall back to local execution: a cluster run with zero
//     healthy workers is exactly a single-process run.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prefetchlab/internal/experiments"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/resultcache"
	"prefetchlab/internal/serve/breaker"
)

// Getter fetches one API path from a worker — satisfied by the retrying
// *client.Client and injectable for tests.
type Getter interface {
	Get(ctx context.Context, path string) ([]byte, error)
}

// Config assembles a Coordinator.
type Config struct {
	// Workers are the fleet's base URLs, e.g. "http://10.0.0.1:8437".
	Workers []string
	// Options is the result-affecting experiment configuration; it is
	// normalized, fingerprinted and sent with every shard request so all
	// workers compute under the coordinator's configuration.
	Options experiments.Options
	// Ledger, when non-nil, durably records acked results (see OpenLedger).
	Ledger *Ledger
	// Cache, when non-nil, is consulted before dispatching shards: task
	// values acked by earlier sweeps under the same configuration
	// fingerprint are reused instead of recomputed on the fleet, and fresh
	// acks are stored for the next sweep. Corrupt disk entries are detected
	// by the cache itself (CRC) and fall through to a normal dispatch.
	Cache *resultcache.Cache
	// Obs receives shard lifecycle tallies; may be nil.
	Obs *obs.Obs
	// Logger receives dispatch/requeue/liveness events; nil discards.
	Logger *slog.Logger
	// ShardSize is the number of task indices per shard; <= 0 sizes shards
	// so each worker gets about two per batch (finer than one-per-worker,
	// so a dead worker forfeits only part of its share).
	ShardSize int
	// RequestTimeout bounds one shard dispatch (default 5m).
	RequestTimeout time.Duration
	// HeartbeatInterval spaces liveness probes (default 2s).
	HeartbeatInterval time.Duration
	// LivenessTimeout is how long a worker may miss heartbeats before it
	// is declared dead and its in-flight shards requeue (default 10s, and
	// never below 2×HeartbeatInterval).
	LivenessTimeout time.Duration
	// ReassignBudget caps dispatch attempts per shard before it falls back
	// to local execution (default 3).
	ReassignBudget int
	// BreakerThreshold is the consecutive failures that open a worker's
	// circuit breaker (default 3); BreakerCooldown is the open interval
	// before a half-open probe (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// NewClient builds the per-worker API client — required. The CLI
	// supplies the retrying serve/client; tests inject fakes. (The package
	// takes a factory instead of constructing clients itself so cluster
	// never imports serve/client, keeping the serve → cluster dependency
	// acyclic.)
	NewClient func(baseURL string) Getter
}

// worker is one fleet member: its API client, circuit breaker and
// heartbeat-maintained liveness state. liveCtx is canceled the moment the
// worker is declared dead, aborting every dispatch in flight on it.
type worker struct {
	name string
	c    Getter
	br   *breaker.Breaker

	mu         sync.Mutex
	alive      bool
	lastOK     time.Time
	liveCtx    context.Context
	liveCancel context.CancelFunc
}

func (w *worker) isAlive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive
}

func (w *worker) liveContext() context.Context {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.liveCtx
}

// Coordinator shards scheduler batches across the fleet. It implements
// sched.BatchRunner; wire it in via experiments.Options.Remote and call
// SetExperiment before each experiments.Run so dispatches name the right
// driver.
type Coordinator struct {
	cfg     Config
	fp      string
	query   url.Values
	workers []*worker
	obs     *obs.Obs
	logger  *slog.Logger
	next    atomic.Int64

	expMu sync.Mutex
	exp   string

	stop context.CancelFunc
	wg   sync.WaitGroup
}

// New builds a Coordinator. The fleet must be non-empty; liveness begins
// optimistic (every worker assumed alive until heartbeats say otherwise).
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Minute
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Second
	}
	if cfg.LivenessTimeout <= 0 {
		cfg.LivenessTimeout = 10 * time.Second
	}
	if min := 2 * cfg.HeartbeatInterval; cfg.LivenessTimeout < min {
		cfg.LivenessTimeout = min
	}
	if cfg.ReassignBudget <= 0 {
		cfg.ReassignBudget = 3
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.NewClient == nil {
		return nil, errors.New("cluster: Config.NewClient is required")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	o := cfg.Options.Normalized()
	c := &Coordinator{
		cfg:    cfg,
		fp:     o.Fingerprint(),
		query:  optionsQuery(o, cfg.RequestTimeout),
		obs:    cfg.Obs,
		logger: logger,
	}
	now := time.Now()
	for _, name := range cfg.Workers {
		// lint:allow ctxflow (a worker's live context spans its liveness, not any one call; dispatches merge it with the caller's ctx)
		lctx, lcancel := context.WithCancel(context.Background())
		c.workers = append(c.workers, &worker{
			name:       name,
			c:          cfg.NewClient(name),
			br:         breaker.New(cfg.BreakerThreshold, cfg.BreakerCooldown),
			alive:      true,
			lastOK:     now,
			liveCtx:    lctx,
			liveCancel: lcancel,
		})
	}
	return c, nil
}

// optionsQuery renders the result-affecting options as the query every
// shard request carries, so workers compute under the coordinator's
// configuration regardless of their own defaults.
func optionsQuery(o experiments.Options, timeout time.Duration) url.Values {
	q := url.Values{}
	q.Set("scale", strconv.FormatFloat(o.Scale, 'g', -1, 64))
	q.Set("seed", strconv.FormatInt(o.Seed, 10))
	q.Set("mixes", strconv.Itoa(o.Mixes))
	q.Set("period", strconv.FormatInt(o.SamplerPeriod, 10))
	if len(o.Benches) > 0 {
		q.Set("benches", strings.Join(o.Benches, ","))
	}
	q.Set("tier", o.Tier)
	if timeout > 0 {
		q.Set("timeout", timeout.String())
	}
	return q
}

// Fingerprint is the coordinator's result-affecting configuration
// fingerprint — the string shard responses must echo and the shard ledger
// is keyed under (via LedgerFingerprint).
func (c *Coordinator) Fingerprint() string { return c.fp }

// SetExperiment names the experiment driver the next batches belong to;
// the CLI calls it before each experiments.Run.
func (c *Coordinator) SetExperiment(name string) {
	c.expMu.Lock()
	c.exp = name
	c.expMu.Unlock()
}

func (c *Coordinator) experiment() string {
	c.expMu.Lock()
	defer c.expMu.Unlock()
	return c.exp
}

// Start launches the per-worker heartbeat loops. Stop (or ctx
// cancellation) ends them.
func (c *Coordinator) Start(ctx context.Context) {
	hctx, cancel := context.WithCancel(ctx)
	c.stop = cancel
	for _, w := range c.workers {
		c.wg.Add(1)
		go func(w *worker) {
			defer c.wg.Done()
			c.heartbeat(hctx, w)
		}(w)
	}
}

// Stop ends the heartbeat loops and waits for them.
func (c *Coordinator) Stop() {
	if c.stop != nil {
		c.stop()
	}
	c.wg.Wait()
}

// AliveWorkers reports how many fleet members currently pass liveness.
func (c *Coordinator) AliveWorkers() int {
	n := 0
	for _, w := range c.workers {
		if w.isAlive() {
			n++
		}
	}
	return n
}

// heartbeat probes one worker's /healthz on the configured interval. A
// probe failure past the liveness timeout declares the worker dead and
// cancels its live context — aborting in-flight dispatches so their shards
// requeue immediately instead of waiting out the request timeout. A later
// successful probe revives it with a fresh live context.
func (c *Coordinator) heartbeat(ctx context.Context, w *worker) {
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		pctx, cancel := context.WithTimeout(ctx, c.cfg.HeartbeatInterval)
		_, err := w.c.Get(pctx, "/healthz")
		cancel()
		if ctx.Err() != nil {
			return
		}
		now := time.Now()
		var died, revived bool
		w.mu.Lock()
		if err == nil {
			w.lastOK = now
			if !w.alive {
				w.alive = true
				// lint:allow ctxflow (revival mints a fresh liveness-scoped context; see the matching allow in New)
				w.liveCtx, w.liveCancel = context.WithCancel(context.Background())
				revived = true
			}
		} else if w.alive && now.Sub(w.lastOK) > c.cfg.LivenessTimeout {
			w.alive = false
			w.liveCancel()
			died = true
		}
		w.mu.Unlock()
		if died {
			c.obs.WorkerDied(w.name)
			c.logger.Warn("cluster: worker dead, requeueing its shards",
				"worker", w.name, "liveness_timeout", c.cfg.LivenessTimeout.String())
		}
		if revived {
			c.obs.WorkerRejoined(w.name)
			c.logger.Info("cluster: worker rejoined", "worker", w.name)
		}
	}
}

// RunBatch implements sched.BatchRunner: fill from the durable ledger,
// shard the rest across the fleet, record acked results, and return
// whatever was covered — the scheduler runs the remainder locally.
func (c *Coordinator) RunBatch(ctx context.Context, batch string, n int, indices []int) (out map[int][]byte) {
	// BatchRunner must not panic; a coordinator bug degrades to a local
	// run, never a crashed sweep.
	defer func() {
		if rec := recover(); rec != nil {
			c.logger.Error("cluster: coordinator panic, falling back to local execution",
				"batch", batch, "panic", fmt.Sprint(rec))
			out = nil
		}
	}()
	exp := c.experiment()
	if exp == "" {
		return nil
	}
	out = make(map[int][]byte, len(indices))
	missing := c.fillFromLedger(batch, indices, out)
	missing = c.fillFromCache(batch, missing, out)
	if len(missing) == 0 || ctx.Err() != nil {
		return out
	}
	shards := chunk(missing, c.shardSize(len(missing)))
	var (
		mu  sync.Mutex
		wg  sync.WaitGroup
		sem = make(chan struct{}, len(c.workers))
	)
	for _, shard := range shards {
		wg.Add(1)
		go func(shard []int) {
			defer wg.Done()
			// This goroutine is outside RunBatch's recover: a panic here
			// (a buggy injected client, say) must forfeit only this shard
			// to local execution, not crash the sweep.
			defer func() {
				if rec := recover(); rec != nil {
					c.obs.ShardLocalFallback(len(shard))
					c.logger.Error("cluster: shard dispatch panic, falling back to local execution",
						"batch", batch, "panic", fmt.Sprint(rec))
				}
			}()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return
			}
			res := c.dispatch(ctx, exp, batch, shard)
			if len(res) == 0 {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			for i, data := range res {
				out[i.index] = data
				if c.cfg.Ledger != nil {
					if err := c.cfg.Ledger.Record(batch, i.index, i.origin, data); err != nil {
						c.logger.Error("cluster: ledger append failed", "batch", batch, "error", err.Error())
					}
				}
				if c.cfg.Cache.Enabled() {
					c.cfg.Cache.Put(resultcache.Entry{
						Key:         c.cacheKey(batch, i.index),
						ContentType: "application/x-gob",
						Body:        data,
					})
				}
			}
		}(shard)
	}
	wg.Wait()
	return out
}

// fillFromLedger resolves already-acked indices from the durable ledger,
// returning those still missing.
func (c *Coordinator) fillFromLedger(batch string, indices []int, out map[int][]byte) []int {
	if c.cfg.Ledger == nil {
		return indices
	}
	missing := indices[:0:0]
	replayed := 0
	for _, i := range indices {
		if data, _, ok := c.cfg.Ledger.Lookup(batch, i); ok {
			out[i] = data
			replayed++
			continue
		}
		missing = append(missing, i)
	}
	if replayed > 0 {
		c.obs.LedgerReplayed(replayed)
		c.logger.Info("cluster: resumed from shard ledger",
			"batch", batch, "replayed", replayed, "missing", len(missing))
	}
	return missing
}

// cacheKey content-addresses one task value: the configuration fingerprint
// covers every result-affecting option, the batch and index name the task —
// the same coordinates the shard ledger and the checkpoint use.
func (c *Coordinator) cacheKey(batch string, index int) string {
	return "shard|" + c.fp + "|" + batch + "|" + strconv.Itoa(index)
}

// fillFromCache resolves still-missing indices from the result cache,
// returning those that must actually be dispatched. A cached value carries
// the exact bytes a worker acked under this fingerprint, so reuse is
// byte-identical to recomputation.
func (c *Coordinator) fillFromCache(batch string, indices []int, out map[int][]byte) []int {
	if !c.cfg.Cache.Enabled() || len(indices) == 0 {
		return indices
	}
	missing := indices[:0:0]
	reused := 0
	for _, i := range indices {
		if e, ok := c.cfg.Cache.Get(c.cacheKey(batch, i)); ok {
			out[i] = e.Body
			reused++
			continue
		}
		missing = append(missing, i)
	}
	if reused > 0 {
		c.logger.Info("cluster: reused task values from result cache",
			"batch", batch, "reused", reused, "missing", len(missing))
	}
	return missing
}

// shardSize resolves the tasks-per-shard for a batch of n missing tasks:
// the configured size, or about two shards per worker.
func (c *Coordinator) shardSize(n int) int {
	if c.cfg.ShardSize > 0 {
		return c.cfg.ShardSize
	}
	size := (n + 2*len(c.workers) - 1) / (2 * len(c.workers))
	if size < 1 {
		size = 1
	}
	return size
}

// chunk splits indices into shards of at most size.
func chunk(indices []int, size int) [][]int {
	var shards [][]int
	for len(indices) > 0 {
		k := size
		if k > len(indices) {
			k = len(indices)
		}
		shards = append(shards, indices[:k])
		indices = indices[k:]
	}
	return shards
}

// taggedResult carries one acked task value plus the worker that produced
// it (the ledger's Origin column).
type taggedResult struct {
	index  int
	origin string
}

// dispatch drives one shard to completion: pick a live, breaker-admitted
// worker, call it, verify the response, and on any failure requeue to the
// next worker until the reassignment budget is spent. An exhausted budget
// or fleet returns nil — the shard's tasks execute locally.
func (c *Coordinator) dispatch(ctx context.Context, exp, batch string, shard []int) map[taggedResult][]byte {
	for attempt := 0; attempt < c.cfg.ReassignBudget; attempt++ {
		if ctx.Err() != nil {
			return nil
		}
		w, report := c.pick()
		if w == nil {
			break // no live, admitted worker — local fallback
		}
		c.obs.ShardDispatched()
		res, err := c.call(ctx, w, exp, batch, shard)
		if err == nil {
			report(breaker.Success)
			c.obs.ShardAcked()
			out := make(map[taggedResult][]byte, len(res))
			for i, data := range res {
				out[taggedResult{index: i, origin: w.name}] = data
			}
			return out
		}
		if ctx.Err() != nil {
			report(breaker.Canceled)
			return nil
		}
		if errors.Is(err, context.Canceled) {
			// The worker's live context was canceled mid-call: it died, and
			// the heartbeat loop already counted the death. Requeue without
			// penalizing the breaker twice.
			report(breaker.Canceled)
			c.obs.ShardRequeued(w.name, "worker died mid-shard")
		} else {
			report(breaker.Failure)
			c.obs.ShardRequeued(w.name, err.Error())
		}
		c.logger.Warn("cluster: shard requeued",
			"worker", w.name, "batch", batch, "tasks", len(shard),
			"attempt", attempt+1, "budget", c.cfg.ReassignBudget, "error", err.Error())
	}
	c.obs.ShardLocalFallback(len(shard))
	c.logger.Warn("cluster: shard falling back to local execution",
		"batch", batch, "tasks", len(shard))
	return nil
}

// pick selects the next live worker whose breaker admits a dispatch
// (round-robin), tallying quarantined skips. Returns nil when the whole
// fleet is dead or quarantined.
func (c *Coordinator) pick() (*worker, func(breaker.Outcome)) {
	n := len(c.workers)
	start := int(c.next.Add(1))
	for k := 0; k < n; k++ {
		w := c.workers[(start+k)%n]
		if !w.isAlive() {
			continue
		}
		report, err := w.br.Allow()
		if err != nil {
			c.obs.ShardQuarantined(w.name)
			continue
		}
		return w, report
	}
	return nil, nil
}

// call performs one shard request against one worker and validates the
// response: fingerprint echo, batch echo, index coverage and per-result
// CRC. The dispatch context merges the caller's context with the worker's
// live context, so a worker declared dead aborts the call immediately.
func (c *Coordinator) call(ctx context.Context, w *worker, exp, batch string, shard []int) (map[int][]byte, error) {
	mctx, cancel := mergeContext(ctx, w.liveContext())
	defer cancel()
	mctx, tcancel := context.WithTimeout(mctx, c.cfg.RequestTimeout)
	defer tcancel()
	body, err := w.c.Get(mctx, ShardPath(exp, batch, shard, c.query))
	if err != nil {
		return nil, err
	}
	var resp ShardResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("cluster: corrupt shard response: %w", err)
	}
	if resp.Fingerprint != c.fp {
		return nil, fmt.Errorf("cluster: configuration mismatch: worker fingerprint %q, coordinator %q",
			resp.Fingerprint, c.fp)
	}
	if resp.Batch != batch {
		return nil, fmt.Errorf("cluster: response for batch %q, requested %q", resp.Batch, batch)
	}
	want := make(map[int]bool, len(shard))
	for _, i := range shard {
		want[i] = true
	}
	out := make(map[int][]byte, len(resp.Results))
	for _, r := range resp.Results {
		if !want[r.Index] {
			return nil, fmt.Errorf("cluster: response carries unrequested index %d", r.Index)
		}
		if Checksum(r.Data) != r.CRC {
			return nil, fmt.Errorf("cluster: checksum mismatch at index %d", r.Index)
		}
		out[r.Index] = r.Data
	}
	for _, m := range resp.Missing {
		c.logger.Info("cluster: worker could not compute task",
			"worker", w.name, "batch", batch, "index", m.Index, "reason", m.Reason)
	}
	return out, nil
}

// mergeContext derives a context canceled when either parent is. The
// returned cancel releases the AfterFunc registration.
func mergeContext(parent, other context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	stop := context.AfterFunc(other, cancel)
	return ctx, func() {
		stop()
		cancel()
	}
}
