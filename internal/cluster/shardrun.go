package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"prefetchlab/internal/experiments"
	"prefetchlab/internal/sched"
)

// Worker-side shard execution. A shard request names one scheduler batch
// and a set of task indices; the worker runs the owning experiment through
// the ordinary driver, with two twists wired in through the scheduler's
// existing hooks:
//
//   - A fault hook fails every task of the target batch the shard does NOT
//     own with ErrNotOwned before the task body runs, so unowned cells cost
//     nothing (the unlimited failure budget absorbs them as skips). Batches
//     other than the target run normally — they may be prerequisites.
//   - A capture Saver collects the gob-encoded values of the owned tasks
//     as the scheduler persists them, and cancels the run as soon as the
//     last owned value lands, so the worker never renders the figure or
//     executes later batches.
//
// Because the captured bytes are exactly what the scheduler checkpoints,
// the coordinator can feed them back through sched.BatchRunner and the
// merged output is byte-identical to a local run.

// ErrNotOwned marks a task outside the shard being executed; it only ever
// appears inside a worker's shard run, absorbed by the failure budget.
var ErrNotOwned = errors.New("cluster: task not owned by this shard")

// shardFilter is the fault hook confining execution to the owned indices
// of the target batch. Other batches delegate to any underlying hook.
type shardFilter struct {
	batch string
	own   map[int]bool
	inner sched.FaultHook
}

func (f *shardFilter) Inject(batch string, index, attempt int) error {
	if batch == f.batch && !f.own[index] {
		return ErrNotOwned
	}
	if f.inner != nil {
		return f.inner.Inject(batch, index, attempt)
	}
	return nil
}

// captureSaver collects the owned task values of the target batch and
// cancels the run once every one has landed. Lookup always misses, so the
// scheduler executes (never replays) each owned task.
type captureSaver struct {
	batch string
	want  map[int]bool
	done  context.CancelFunc

	mu  sync.Mutex
	got map[int][]byte
}

func (c *captureSaver) Lookup(batch string, index int) ([]byte, bool) { return nil, false }

func (c *captureSaver) Save(batch string, index int, data []byte) {
	if batch != c.batch || !c.want[index] {
		return
	}
	c.mu.Lock()
	if _, dup := c.got[index]; !dup {
		c.got[index] = data
	}
	complete := len(c.got) == len(c.want)
	c.mu.Unlock()
	if complete {
		c.done()
	}
}

func (c *captureSaver) results() map[int][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int][]byte, len(c.got))
	for k, v := range c.got {
		out[k] = v
	}
	return out
}

// RunShard executes the (batch, indices) shard of experiment exp on sess
// and returns the gob-encoded task values by index. The session's options
// are adjusted in place (fault hook, saver, failure budget, output sink),
// so callers must pass a session dedicated to this shard. A partial map
// with no error means some owned tasks failed their attempts; the
// coordinator runs those indices locally.
func RunShard(ctx context.Context, sess *experiments.Session, exp, batch string, indices []int) (map[int][]byte, error) {
	if !experiments.Known(exp) {
		return nil, fmt.Errorf("cluster: unknown experiment %q", exp)
	}
	own := make(map[int]bool, len(indices))
	for _, i := range indices {
		own[i] = true
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	cap := &captureSaver{batch: batch, want: own, done: cancel, got: make(map[int][]byte)}
	sess.O.Fault = &shardFilter{batch: batch, own: own, inner: sess.O.Fault}
	sess.O.Save = cap
	sess.O.FailureBudget = -1 // unowned cells fail by design; absorb them
	sess.O.Remote = nil       // workers never re-dispatch
	sess.O.Out = io.Discard   // the figure rendering is not the product

	err := experiments.Run(cctx, sess, exp)
	got := cap.results()
	if len(got) == len(own) {
		return got, nil // complete — err can only be our own completion cancel
	}
	if ctx.Err() != nil {
		return nil, fmt.Errorf("cluster: shard run canceled: %w", ctx.Err())
	}
	if err != nil && !experiments.IsCancellation(err) && len(got) == 0 {
		return nil, fmt.Errorf("cluster: shard run failed: %w", err)
	}
	// Partial coverage: some owned tasks failed all attempts (or the batch
	// never ran, e.g. a wrong batch name). The response's Missing entries
	// tell the coordinator to run them locally.
	return got, nil
}
