package cluster

import (
	"fmt"
	"hash/crc32"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// Wire types of GET /api/v1/shards/run — the coordinator/worker protocol.
// A shard request names one experiment, one scheduler batch inside it and
// the task indices the coordinator wants computed; the response carries the
// gob-encoded task values (the same bytes the scheduler would persist to a
// checkpoint), each guarded by a CRC-32 so a corrupted body is detected and
// requeued instead of applied, plus the worker's configuration fingerprint
// so a coordinator/worker configuration mismatch can never silently mix
// results from two different experiments.

// ShardResult is one computed task value.
type ShardResult struct {
	Index int    `json:"index"`
	CRC   uint32 `json:"crc32"` // crc32.ChecksumIEEE of Data
	Data  []byte `json:"data"`  // gob task value (base64 on the wire)
}

// ShardMiss is one requested index the worker could not compute (its task
// failed all attempts, or the run was cut short). The coordinator executes
// missing indices locally.
type ShardMiss struct {
	Index  int    `json:"index"`
	Reason string `json:"reason"`
}

// ShardResponse is the body of a successful shard request.
type ShardResponse struct {
	// Fingerprint echoes the worker's effective result-affecting
	// configuration; the coordinator rejects responses whose fingerprint
	// does not match its own.
	Fingerprint string        `json:"fingerprint"`
	Experiment  string        `json:"experiment"`
	Batch       string        `json:"batch"`
	Results     []ShardResult `json:"results"`
	Missing     []ShardMiss   `json:"missing,omitempty"`
}

// Checksum is the integrity check applied to each result's task value —
// the same CRC-32 (IEEE) the checkpoint format uses.
func Checksum(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

// maxShardIndices bounds one request so a corrupted indices parameter
// cannot make a worker attempt an absurd allocation.
const maxShardIndices = 1 << 20

// FormatIndices renders a task index list as the compact csv the indices
// query parameter carries.
func FormatIndices(indices []int) string {
	var b strings.Builder
	for i, idx := range indices {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(idx))
	}
	return b.String()
}

// ParseIndices parses the indices csv: non-negative integers, sorted and
// deduplicated so worker-side execution order is canonical.
func ParseIndices(csv string) ([]int, error) {
	if csv == "" {
		return nil, fmt.Errorf("cluster: empty indices")
	}
	fields := strings.Split(csv, ",")
	if len(fields) > maxShardIndices {
		return nil, fmt.Errorf("cluster: too many indices (%d, max %d)", len(fields), maxShardIndices)
	}
	out := make([]int, 0, len(fields))
	seen := make(map[int]bool, len(fields))
	for _, f := range fields {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("cluster: bad index %q (want a non-negative integer)", f)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out, nil
}

// ShardPath builds the request path of one shard dispatch. extra carries
// the coordinator's result-affecting options (scale, seed, …) so the worker
// computes under the coordinator's configuration, not its own defaults.
func ShardPath(exp, batch string, indices []int, extra url.Values) string {
	q := url.Values{}
	for k, vs := range extra {
		q[k] = vs
	}
	q.Set("exp", exp)
	q.Set("batch", batch)
	q.Set("indices", FormatIndices(indices))
	return "/api/v1/shards/run?" + q.Encode()
}
