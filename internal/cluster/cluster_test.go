package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"prefetchlab/internal/experiments"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/resultcache"
)

func testOptions() experiments.Options {
	return experiments.Options{
		Scale:         0.02,
		SamplerPeriod: 512,
		Benches:       []string{"libquantum"},
		Mixes:         2,
		Seed:          42,
		Workers:       2,
	}
}

func taskValue(index int) []byte { return []byte(fmt.Sprintf("value-%d", index)) }

// fakeWorker is an injectable Getter: it answers /healthz and shard requests
// with well-formed responses, records every shard index it served, and lets
// a test corrupt its behavior per call.
type fakeWorker struct {
	fp string // fingerprint echoed in shard responses

	mu        sync.Mutex
	healthErr error
	served    []int
	calls     int
	// corrupt, when non-nil, replaces the response of shard call n
	// (1-based) — return (nil, err) to fail the call outright.
	corrupt func(n int, body []byte) ([]byte, error)
}

func (f *fakeWorker) Get(ctx context.Context, path string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	u, err := url.Parse(path)
	if err != nil {
		return nil, err
	}
	if u.Path == "/healthz" {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.healthErr != nil {
			return nil, f.healthErr
		}
		return []byte("ok\n"), nil
	}
	q := u.Query()
	indices, err := ParseIndices(q.Get("indices"))
	if err != nil {
		return nil, err
	}
	resp := ShardResponse{
		Fingerprint: f.fp,
		Experiment:  q.Get("exp"),
		Batch:       q.Get("batch"),
		Results:     []ShardResult{},
	}
	for _, i := range indices {
		data := taskValue(i)
		resp.Results = append(resp.Results, ShardResult{Index: i, CRC: Checksum(data), Data: data})
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.calls++
	n := f.calls
	corrupt := f.corrupt
	f.mu.Unlock()
	if corrupt != nil {
		body, err = corrupt(n, body)
		if err != nil {
			return nil, err
		}
		if body == nil {
			return nil, errors.New("fake worker: refused")
		}
	}
	f.mu.Lock()
	f.served = append(f.served, indices...)
	f.mu.Unlock()
	return body, nil
}

func (f *fakeWorker) servedIndices() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.served...)
}

// newTestCoordinator wires n fake workers into a coordinator. Heartbeats are
// not started unless the test starts them, so liveness stays optimistic.
func newTestCoordinator(t *testing.T, cfg Config, fakes ...*fakeWorker) (*Coordinator, *obs.Obs) {
	t.Helper()
	o := &obs.Obs{}
	fp := cfg.Options.Normalized().Fingerprint()
	for i, f := range fakes {
		f.fp = fp
		cfg.Workers = append(cfg.Workers, fmt.Sprintf("http://fake-%d", i))
	}
	cfg.Obs = o
	i := 0
	cfg.NewClient = func(string) Getter {
		f := fakes[i]
		i++
		return f
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, o
}

func indicesUpTo(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestRunBatchDispatchAndMerge(t *testing.T) {
	w1, w2 := &fakeWorker{}, &fakeWorker{}
	c, o := newTestCoordinator(t, Config{Options: testOptions(), ShardSize: 2}, w1, w2)
	c.SetExperiment("fig8")

	out := c.RunBatch(context.Background(), "fig8", 8, indicesUpTo(8))
	if len(out) != 8 {
		t.Fatalf("RunBatch covered %d of 8 tasks", len(out))
	}
	for i := 0; i < 8; i++ {
		if string(out[i]) != string(taskValue(i)) {
			t.Fatalf("out[%d] = %q, want %q", i, out[i], taskValue(i))
		}
	}
	if got := len(w1.servedIndices()) + len(w2.servedIndices()); got != 8 {
		t.Fatalf("fleet served %d indices, want 8", got)
	}
	if len(w1.servedIndices()) == 0 || len(w2.servedIndices()) == 0 {
		t.Fatal("round-robin never reached one of two healthy workers")
	}
	cc := o.ClusterCounts()
	if cc.ShardsDispatched != 4 || cc.ShardsAcked != 4 {
		t.Fatalf("shards dispatched/acked = %d/%d, want 4/4", cc.ShardsDispatched, cc.ShardsAcked)
	}
}

func TestRunBatchWithoutExperimentIsLocal(t *testing.T) {
	w := &fakeWorker{}
	c, _ := newTestCoordinator(t, Config{Options: testOptions()}, w)
	// No SetExperiment: the coordinator cannot name a driver, so everything
	// runs locally.
	if out := c.RunBatch(context.Background(), "fig8", 4, indicesUpTo(4)); out != nil {
		t.Fatalf("RunBatch without an experiment = %v, want nil", out)
	}
	if calls := len(w.servedIndices()); calls != 0 {
		t.Fatalf("worker served %d indices without an experiment", calls)
	}
}

// TestRunBatchRequeuesBadResponses drives every response-validation failure
// through the requeue path: the bad worker's response is rejected, the shard
// reassigns to the healthy worker, and the figure data stays correct.
func TestRunBatchRequeuesBadResponses(t *testing.T) {
	fp := testOptions().Normalized().Fingerprint()
	cases := []struct {
		name    string
		corrupt func(n int, body []byte) ([]byte, error)
	}{
		{"corrupt json", func(int, []byte) ([]byte, error) { return []byte("{not json"), nil }},
		{"transport error", func(int, []byte) ([]byte, error) { return nil, errors.New("boom") }},
		{"crc mismatch", func(_ int, body []byte) ([]byte, error) {
			var r ShardResponse
			json.Unmarshal(body, &r)
			for i := range r.Results {
				r.Results[i].CRC ^= 0xFFFF
			}
			return json.Marshal(r)
		}},
		{"fingerprint mismatch", func(_ int, body []byte) ([]byte, error) {
			var r ShardResponse
			json.Unmarshal(body, &r)
			r.Fingerprint = "scale=1 seed=0 mixes=1 period=64 benches=mcf"
			return json.Marshal(r)
		}},
		{"wrong batch", func(_ int, body []byte) ([]byte, error) {
			var r ShardResponse
			json.Unmarshal(body, &r)
			r.Batch = "someone-elses-batch"
			return json.Marshal(r)
		}},
		{"unrequested index", func(_ int, body []byte) ([]byte, error) {
			var r ShardResponse
			json.Unmarshal(body, &r)
			extra := taskValue(999)
			r.Results = append(r.Results, ShardResult{Index: 999, CRC: Checksum(extra), Data: extra})
			return json.Marshal(r)
		}},
	}
	_ = fp
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := &fakeWorker{corrupt: tc.corrupt}
			good := &fakeWorker{}
			// Round-robin picks worker 1 first, so the bad worker goes second
			// in the fleet: the first dispatch fails and must requeue.
			c, o := newTestCoordinator(t, Config{
				Options:   testOptions(),
				ShardSize: 4, // one shard, so the requeue path is exercised deterministically
			}, good, bad)
			c.SetExperiment("fig8")

			out := c.RunBatch(context.Background(), "fig8", 4, indicesUpTo(4))
			if len(out) != 4 {
				t.Fatalf("RunBatch covered %d of 4 tasks", len(out))
			}
			for i := 0; i < 4; i++ {
				if string(out[i]) != string(taskValue(i)) {
					t.Fatalf("out[%d] = %q, want %q", i, out[i], taskValue(i))
				}
			}
			if got := o.ClusterCounts().ShardsRequeued; got < 1 {
				t.Fatalf("ShardsRequeued = %d, want >= 1", got)
			}
			if len(good.servedIndices()) != 4 {
				t.Fatalf("healthy worker served %v, want all 4 indices", good.servedIndices())
			}
		})
	}
}

// TestBreakerQuarantinesFlappingWorker: a worker failing every call trips its
// circuit breaker after the threshold; further picks skip it as quarantined
// and the shard falls back to local execution once the fleet is exhausted.
func TestBreakerQuarantinesFlappingWorker(t *testing.T) {
	bad := &fakeWorker{corrupt: func(int, []byte) ([]byte, error) { return nil, errors.New("boom") }}
	c, o := newTestCoordinator(t, Config{
		Options:          testOptions(),
		ShardSize:        4,
		ReassignBudget:   10,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	}, bad)
	c.SetExperiment("fig8")

	out := c.RunBatch(context.Background(), "fig8", 4, indicesUpTo(4))
	if len(out) != 0 {
		t.Fatalf("RunBatch covered %d tasks through a dead fleet", len(out))
	}
	cc := o.ClusterCounts()
	if cc.ShardsRequeued != 3 {
		t.Fatalf("ShardsRequeued = %d, want 3 (breaker threshold)", cc.ShardsRequeued)
	}
	if cc.ShardsQuarantined < 1 {
		t.Fatalf("ShardsQuarantined = %d, want >= 1", cc.ShardsQuarantined)
	}
	if cc.ShardsLocal != 1 {
		t.Fatalf("ShardsLocal = %d, want 1 (the single shard)", cc.ShardsLocal)
	}
}

// TestRunBatchFillsFromLedger: acked indices replay from the durable ledger
// and are never re-dispatched; fresh acks land in the ledger for next time.
func TestRunBatchFillsFromLedger(t *testing.T) {
	opts := testOptions()
	path := filepath.Join(t.TempDir(), "shards.ledger")
	l, err := OpenLedger(path, opts.Normalized().Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1} {
		if err := l.Record("fig8", i, "http://earlier-run", taskValue(i)); err != nil {
			t.Fatal(err)
		}
	}

	w := &fakeWorker{}
	c, o := newTestCoordinator(t, Config{Options: opts, Ledger: l, ShardSize: 4}, w)
	c.SetExperiment("fig8")

	out := c.RunBatch(context.Background(), "fig8", 4, indicesUpTo(4))
	if len(out) != 4 {
		t.Fatalf("RunBatch covered %d of 4 tasks", len(out))
	}
	served := w.servedIndices()
	if len(served) != 2 || served[0] != 2 || served[1] != 3 {
		t.Fatalf("worker served %v, want only the unacked [2 3]", served)
	}
	if got := o.ClusterCounts().TasksLedger; got != 2 {
		t.Fatalf("TasksLedger = %d, want 2", got)
	}
	for _, i := range []int{2, 3} {
		if _, _, ok := l.Lookup("fig8", i); !ok {
			t.Fatalf("fresh ack for index %d did not reach the ledger", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunBatchSurvivesClientPanic: a panicking injected client forfeits its
// shard to local execution instead of crashing the sweep — dispatch
// goroutines carry their own recover.
func TestRunBatchSurvivesClientPanic(t *testing.T) {
	bomb := &fakeWorker{corrupt: func(int, []byte) ([]byte, error) { panic("injected client bug") }}
	c, o := newTestCoordinator(t, Config{Options: testOptions(), ShardSize: 4}, bomb)
	c.SetExperiment("fig8")

	out := c.RunBatch(context.Background(), "fig8", 4, indicesUpTo(4))
	if len(out) != 0 {
		t.Fatalf("RunBatch covered %d tasks from a panicking client", len(out))
	}
	if got := o.ClusterCounts().ShardsLocal; got != 1 {
		t.Fatalf("ShardsLocal = %d, want 1", got)
	}
}

// TestDeadWorkerAbortsInFlightDispatch: declaring a worker dead cancels its
// live context, which aborts a blocked dispatch immediately (no waiting out
// the request timeout) and requeues the shard.
func TestDeadWorkerAbortsInFlightDispatch(t *testing.T) {
	started := make(chan struct{}, 8)
	o := &obs.Obs{}
	c, err := New(Config{
		Workers:        []string{"http://stuck"},
		Options:        testOptions(),
		Obs:            o,
		ShardSize:      4,
		ReassignBudget: 2,
		RequestTimeout: time.Hour, // the abort must come from liveness, not this
		NewClient: func(string) Getter {
			return stuckGetter{started: started}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetExperiment("fig8")

	done := make(chan map[int][]byte, 1)
	go func() { done <- c.RunBatch(context.Background(), "fig8", 4, indicesUpTo(4)) }()

	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch never reached the worker")
	}
	// Declare the worker dead, as the heartbeat loop would.
	w := c.workers[0]
	w.mu.Lock()
	w.alive = false
	w.liveCancel()
	w.mu.Unlock()

	select {
	case out := <-done:
		if len(out) != 0 {
			t.Fatalf("RunBatch covered %d tasks via a dead worker", len(out))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunBatch still blocked after its only worker died")
	}
	cc := o.ClusterCounts()
	if cc.ShardsRequeued < 1 {
		t.Fatalf("ShardsRequeued = %d, want >= 1 (died mid-shard)", cc.ShardsRequeued)
	}
	if cc.ShardsLocal != 1 {
		t.Fatalf("ShardsLocal = %d, want 1", cc.ShardsLocal)
	}
}

// stuckGetter hangs every shard call until its dispatch context is
// canceled — a worker that accepted a request and then crashed.
type stuckGetter struct {
	started chan struct{}
}

func (s stuckGetter) Get(ctx context.Context, path string) ([]byte, error) {
	select {
	case s.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestHeartbeatDeathAndRejoin drives the liveness state machine with a real
// heartbeat loop: probes fail → death after the liveness timeout; probes
// recover → rejoin with a fresh live context.
func TestHeartbeatDeathAndRejoin(t *testing.T) {
	w := &fakeWorker{}
	c, o := newTestCoordinator(t, Config{
		Options:           testOptions(),
		HeartbeatInterval: 10 * time.Millisecond,
		LivenessTimeout:   20 * time.Millisecond,
	}, w)
	c.Start(context.Background())
	defer c.Stop()

	if got := c.AliveWorkers(); got != 1 {
		t.Fatalf("AliveWorkers = %d at start, want 1 (optimistic liveness)", got)
	}

	w.mu.Lock()
	w.healthErr = errors.New("connection refused")
	w.mu.Unlock()
	waitFor(t, "worker death", func() bool { return c.AliveWorkers() == 0 })
	if got := o.ClusterCounts().WorkerDeaths; got != 1 {
		t.Fatalf("WorkerDeaths = %d, want 1", got)
	}

	w.mu.Lock()
	w.healthErr = nil
	w.mu.Unlock()
	waitFor(t, "worker rejoin", func() bool { return c.AliveWorkers() == 1 })
	if got := o.ClusterCounts().WorkerRejoins; got != 1 {
		t.Fatalf("WorkerRejoins = %d, want 1", got)
	}
	if err := c.workers[0].liveContext().Err(); err != nil {
		t.Fatalf("rejoined worker's live context is dead: %v", err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NewClient: func(string) Getter { return nil }}); err == nil {
		t.Fatal("New with no workers succeeded")
	}
	if _, err := New(Config{Workers: []string{"http://w"}}); err == nil {
		t.Fatal("New without a client factory succeeded")
	}
}

func TestParseIndices(t *testing.T) {
	got, err := ParseIndices("7, 3,3,0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 7 {
		t.Fatalf("ParseIndices = %v, want [0 3 7]", got)
	}
	for _, bad := range []string{"", "1,-2", "1,x", "1,,2"} {
		if _, err := ParseIndices(bad); err == nil {
			t.Errorf("ParseIndices(%q) succeeded", bad)
		}
	}
}

func TestShardPathRoundtrip(t *testing.T) {
	q := url.Values{"scale": {"0.02"}, "seed": {"42"}}
	path := ShardPath("fig8", "mixstudy", []int{4, 0, 9}, q)
	u, err := url.Parse(path)
	if err != nil {
		t.Fatal(err)
	}
	pq := u.Query()
	if pq.Get("exp") != "fig8" || pq.Get("batch") != "mixstudy" {
		t.Fatalf("path %q lost exp/batch", path)
	}
	back, err := ParseIndices(pq.Get("indices"))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0] != 0 || back[1] != 4 || back[2] != 9 {
		t.Fatalf("indices roundtrip = %v", back)
	}
	if pq.Get("scale") != "0.02" || pq.Get("seed") != "42" {
		t.Fatalf("path %q lost the options query", path)
	}
}

// TestRunBatchFillsFromResultCache: task values acked by one sweep are
// reused from the result cache by the next sweep under the same
// configuration fingerprint — zero dispatches, identical bytes.
func TestRunBatchFillsFromResultCache(t *testing.T) {
	dir := t.TempDir()
	openCache := func() *resultcache.Cache {
		cache, err := resultcache.New(resultcache.Config{MaxEntries: 64, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return cache
	}

	w1 := &fakeWorker{}
	c1, _ := newTestCoordinator(t, Config{Options: testOptions(), ShardSize: 4, Cache: openCache()}, w1)
	c1.SetExperiment("fig8")
	first := c1.RunBatch(context.Background(), "fig8", 8, indicesUpTo(8))
	if len(first) != 8 || len(w1.servedIndices()) != 8 {
		t.Fatalf("seed run covered %d tasks via %d served indices, want 8/8", len(first), len(w1.servedIndices()))
	}

	// A fresh coordinator (fresh memory tier, same disk directory) must not
	// touch its fleet at all.
	w2 := &fakeWorker{}
	c2, o2 := newTestCoordinator(t, Config{Options: testOptions(), ShardSize: 4, Cache: openCache()}, w2)
	c2.SetExperiment("fig8")
	second := c2.RunBatch(context.Background(), "fig8", 8, indicesUpTo(8))
	if len(second) != 8 {
		t.Fatalf("cached run covered %d of 8 tasks", len(second))
	}
	for i := 0; i < 8; i++ {
		if string(second[i]) != string(first[i]) {
			t.Fatalf("cached value[%d] = %q differs from acked %q", i, second[i], first[i])
		}
	}
	if served := w2.servedIndices(); len(served) != 0 {
		t.Fatalf("cached run dispatched indices %v, want none", served)
	}
	if cc := o2.ClusterCounts(); cc.ShardsDispatched != 0 {
		t.Fatalf("cached run dispatched %d shards, want 0", cc.ShardsDispatched)
	}

	// A different fingerprint must not reuse the entries.
	other := testOptions()
	other.Seed = 43
	w3 := &fakeWorker{}
	c3, _ := newTestCoordinator(t, Config{Options: other, ShardSize: 4, Cache: openCache()}, w3)
	c3.SetExperiment("fig8")
	if out := c3.RunBatch(context.Background(), "fig8", 8, indicesUpTo(8)); len(out) != 8 {
		t.Fatalf("other-seed run covered %d of 8 tasks", len(out))
	}
	if served := w3.servedIndices(); len(served) != 8 {
		t.Fatalf("other-seed run served %v, want all 8 (no cross-fingerprint reuse)", served)
	}
}
