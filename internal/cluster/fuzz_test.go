package cluster

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// goldenLedger builds a real shard ledger (header + a few acked records) and
// returns its bytes — the honest corpus the fuzzer mutates.
func goldenLedger(tb testing.TB, configFingerprint string) []byte {
	tb.Helper()
	path := filepath.Join(tb.TempDir(), "golden.ledger")
	l, err := OpenLedger(path, configFingerprint)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Record("fig8", i, "http://w1", []byte{byte(i), 0xAB, 0xCD}); err != nil {
			tb.Fatal(err)
		}
	}
	if err := l.Record("fig9", 0, "http://w2", []byte("another batch")); err != nil {
		tb.Fatal(err)
	}
	if err := l.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzLedgerReader feeds arbitrary bytes through OpenLedger: however corrupt
// or truncated the file, opening must never panic, and every rejection must
// be a typed error (ErrLedgerCorrupt or ErrLedgerFingerprint). Inputs that
// merely have torn tails must open with the verified prefix, and an opened
// ledger must record and resume — the coordinator's restart path depends on
// exactly this behavior for a ledger damaged by a mid-append crash.
func FuzzLedgerReader(f *testing.F) {
	const fp = "scale=0.02 seed=42 mixes=2 period=512 benches=libquantum"
	golden := goldenLedger(f, fp)

	f.Add(golden)                 // fully valid
	f.Add(golden[:len(golden)-3]) // torn final record
	f.Add(golden[:11])            // truncated header
	f.Add([]byte{})               // empty file (fresh start)
	f.Add([]byte("PFLCKPT1"))     // magic only
	f.Add([]byte("not a ledger")) // bad magic
	flipped := append([]byte(nil), golden...)
	flipped[len(flipped)/2] ^= 0xFF // corrupt a record payload
	f.Add(flipped)
	short := append([]byte(nil), golden[:16]...)
	short[8] = 0xFF // implausible fingerprint length
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ledger")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenLedger(path, fp)
		if err != nil {
			if !errors.Is(err, ErrLedgerCorrupt) && !errors.Is(err, ErrLedgerFingerprint) {
				t.Fatalf("untyped error for corrupt input: %v", err)
			}
			return
		}
		// The ledger opened: whatever survived must be safe to read, and the
		// file must accept new acks and resume them.
		l.Each(func(batch string, index int, origin string, data []byte) {})
		if err := l.Record("fuzz", 0, "http://w", []byte("post")); err != nil {
			t.Fatalf("record after open: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		re, err := OpenLedger(path, fp)
		if err != nil {
			t.Fatalf("reopen of a ledger we just wrote: %v", err)
		}
		if _, _, ok := re.Lookup("fuzz", 0); !ok {
			t.Fatal("ack recorded after fuzz open did not survive reopen")
		}
		re.Close()
	})
}
