package cluster

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"prefetchlab/internal/ckpt"
)

const testFP = "scale=0.02 seed=42 mixes=2 period=512 benches=libquantum"

func openTestLedger(t *testing.T, path string) *Ledger {
	t.Helper()
	l, err := OpenLedger(path, testFP)
	if err != nil {
		t.Fatalf("OpenLedger: %v", err)
	}
	return l
}

func TestLedgerRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shards.ledger")
	l := openTestLedger(t, path)
	if err := l.Record("fig8", 3, "http://w1", []byte("value-3")); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := l.Record("fig8", 7, "http://w2", []byte("value-7")); err != nil {
		t.Fatalf("Record: %v", err)
	}

	data, origin, ok := l.Lookup("fig8", 3)
	if !ok || !bytes.Equal(data, []byte("value-3")) || origin != "http://w1" {
		t.Fatalf("Lookup(fig8, 3) = %q, %q, %v", data, origin, ok)
	}
	if _, _, ok := l.Lookup("fig8", 4); ok {
		t.Fatal("Lookup of an unrecorded index reported present")
	}
	if _, _, ok := l.Lookup("fig9", 3); ok {
		t.Fatal("Lookup under the wrong batch reported present")
	}

	seen := map[int]string{}
	l.Each(func(batch string, index int, origin string, data []byte) {
		if batch != "fig8" {
			t.Errorf("Each visited batch %q", batch)
		}
		seen[index] = origin
	})
	if len(seen) != 2 || seen[3] != "http://w1" || seen[7] != "http://w2" {
		t.Fatalf("Each visited %v", seen)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestLedgerAtMostOnce pins the dedupe that makes shard reassignment safe: a
// task acked by two workers (one slow, one reassigned) lands in the ledger
// once, and the second Record is a no-op — the first value wins.
func TestLedgerAtMostOnce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shards.ledger")
	l := openTestLedger(t, path)
	if err := l.Record("fig8", 0, "http://w1", []byte("first")); err != nil {
		t.Fatalf("Record: %v", err)
	}
	if err := l.Record("fig8", 0, "http://w2", []byte("second")); err != nil {
		t.Fatalf("re-Record: %v", err)
	}
	if got := l.Appended(); got != 1 {
		t.Fatalf("Appended = %d after duplicate Record, want 1", got)
	}
	data, origin, ok := l.Lookup("fig8", 0)
	if !ok || string(data) != "first" || origin != "http://w1" {
		t.Fatalf("Lookup after duplicate = %q, %q, %v; want the first ack to win", data, origin, ok)
	}
	l.Close()
}

func TestLedgerResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shards.ledger")
	l := openTestLedger(t, path)
	for i := 0; i < 5; i++ {
		if err := l.Record("fig8", i, "http://w1", []byte{byte(i)}); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := openTestLedger(t, path)
	defer re.Close()
	if got := re.Replayed(); got != 5 {
		t.Fatalf("Replayed = %d after reopen, want 5", got)
	}
	for i := 0; i < 5; i++ {
		data, _, ok := re.Lookup("fig8", i)
		if !ok || !bytes.Equal(data, []byte{byte(i)}) {
			t.Fatalf("Lookup(fig8, %d) after reopen = %q, %v", i, data, ok)
		}
	}
}

func TestLedgerFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shards.ledger")
	l := openTestLedger(t, path)
	l.Record("fig8", 0, "w", []byte("x"))
	l.Close()

	_, err := OpenLedger(path, "scale=1 seed=7 mixes=4 period=1024 benches=mcf")
	if !errors.Is(err, ErrLedgerFingerprint) {
		t.Fatalf("OpenLedger under a different configuration: err = %v, want ErrLedgerFingerprint", err)
	}
}

// TestLedgerRejectsPlainCheckpoint pins the version suffix: a plain task
// checkpoint written under the same experiment configuration is not a shard
// ledger, and vice versa.
func TestLedgerRejectsPlainCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tasks.ckpt")
	c, err := ckpt.Open(path, testFP)
	if err != nil {
		t.Fatal(err)
	}
	c.Append(ckpt.KindTask, "fig8", 0, []byte("task value"))
	c.Close()

	_, err = OpenLedger(path, testFP)
	if !errors.Is(err, ErrLedgerFingerprint) {
		t.Fatalf("OpenLedger on a checkpoint file: err = %v, want ErrLedgerFingerprint", err)
	}
}

// TestLedgerCorruptEntryIsAbsent: a shard record whose payload is not a
// decodable ledgerEntry is treated as absent — the shard simply dispatches
// again — never an error or panic.
func TestLedgerCorruptEntryIsAbsent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shards.ledger")
	c, err := ckpt.Open(path, LedgerFingerprint(testFP))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(ckpt.KindShard, "fig8", 0, []byte("not gob")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	l := openTestLedger(t, path)
	defer l.Close()
	if _, _, ok := l.Lookup("fig8", 0); ok {
		t.Fatal("Lookup returned a record whose payload does not decode")
	}
	visited := 0
	l.Each(func(string, int, string, []byte) { visited++ })
	if visited != 0 {
		t.Fatalf("Each visited %d undecodable records, want 0", visited)
	}
}

// TestLedgerTornTail: a crash mid-append leaves a torn final record; reopen
// recovers the verified prefix and the torn record is dispatched again.
func TestLedgerTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shards.ledger")
	l := openTestLedger(t, path)
	l.Record("fig8", 0, "w", []byte("kept"))
	l.Record("fig8", 1, "w", []byte("torn"))
	l.Close()

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	re := openTestLedger(t, path)
	defer re.Close()
	if got := re.Replayed(); got != 1 {
		t.Fatalf("Replayed = %d after torn tail, want 1", got)
	}
	if _, _, ok := re.Lookup("fig8", 0); !ok {
		t.Fatal("verified record lost with the torn tail")
	}
	if _, _, ok := re.Lookup("fig8", 1); ok {
		t.Fatal("torn record survived reopen")
	}
}

func TestLedgerBadMagicIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a.ledger")
	if err := os.WriteFile(path, []byte("definitely not a ledger"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenLedger(path, testFP)
	if !IsLedgerCorrupt(err) {
		t.Fatalf("OpenLedger on garbage: err = %v, want IsLedgerCorrupt", err)
	}
}
