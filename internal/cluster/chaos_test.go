package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"prefetchlab/internal/cluster"
	"prefetchlab/internal/experiments"
	"prefetchlab/internal/obs"
	"prefetchlab/internal/resultcache"
	"prefetchlab/internal/serve"
	"prefetchlab/internal/serve/client"
)

// The chaos suite runs real coordinator/worker fleets — serve.New servers
// with the shard endpoint enabled, the retrying HTTP client in between —
// under injected failures: killed connections, latency spikes, corrupted
// responses, a dead fleet, and a coordinator restart. The invariant under
// every scenario is the tentpole one: the rendered figure bytes are
// identical to a plain single-process run.

const chaosExperiment = "fig8"

func chaosOptions() experiments.Options {
	return experiments.Options{
		Scale:         0.02,
		SamplerPeriod: 512,
		Benches:       []string{"libquantum"},
		Mixes:         2,
		Seed:          42,
		Workers:       2,
	}
}

// referenceBytes renders the experiment in-process — the golden output every
// cluster run must reproduce exactly.
func referenceBytes(t *testing.T) []byte {
	t.Helper()
	if testing.Short() {
		t.Skip("chaos suite runs full coordinator/worker fleets; skipped in -short")
	}
	o := chaosOptions()
	var buf bytes.Buffer
	o.Out = &buf
	if err := experiments.Run(context.Background(), experiments.NewSession(o), chaosExperiment); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return buf.Bytes()
}

// startWorkers launches n prefetchd-equivalent workers (shard endpoint
// enabled). wrap, when non-nil, interposes chaos middleware on worker i.
func startWorkers(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s := serve.New(serve.Config{Base: chaosOptions(), Worker: true})
		var h http.Handler = s.Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

func isShardRequest(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/api/v1/shards/")
}

// clusterRun executes the experiment with a coordinator over the fleet and
// returns the rendered bytes plus the run's tallies.
func clusterRun(t *testing.T, urls []string, ledger *cluster.Ledger) ([]byte, obs.ClusterCounts) {
	t.Helper()
	return clusterRunCached(t, urls, ledger, nil)
}

// clusterRunCached is clusterRun with a result cache attached to the
// coordinator.
func clusterRunCached(t *testing.T, urls []string, ledger *cluster.Ledger, cache *resultcache.Cache) ([]byte, obs.ClusterCounts) {
	t.Helper()
	o := &obs.Obs{}
	coord, err := cluster.New(cluster.Config{
		Workers:        urls,
		Options:        chaosOptions(),
		Ledger:         ledger,
		Cache:          cache,
		Obs:            o,
		ReassignBudget: 4,
		RequestTimeout: time.Minute,
		// Probes share the box with the CPU-saturated simulation; a tight
		// liveness window would declare busy-but-healthy workers dead.
		HeartbeatInterval: 500 * time.Millisecond,
		LivenessTimeout:   10 * time.Second,
		NewClient: func(baseURL string) cluster.Getter {
			return client.New(client.Config{
				BaseURL:     baseURL,
				MaxRetries:  -1, // fail fast: reassignment is the coordinator's job
				BaseBackoff: time.Millisecond,
			})
		},
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	ctx := context.Background()
	coord.Start(ctx)
	defer coord.Stop()
	coord.SetExperiment(chaosExperiment)

	ro := chaosOptions()
	var buf bytes.Buffer
	ro.Out = &buf
	ro.Obs = o
	ro.Remote = coord
	if err := experiments.Run(ctx, experiments.NewSession(ro), chaosExperiment); err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	return buf.Bytes(), o.ClusterCounts()
}

func assertIdentical(t *testing.T, got, want []byte) {
	t.Helper()
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster output differs from the single-process run:\n--- cluster (%d bytes)\n%s\n--- local (%d bytes)\n%s",
			len(got), got, len(want), want)
	}
}

// TestClusterByteIdentical is the tentpole acceptance: figure bytes are
// identical to single-process at 1 worker and at 3 workers, with tasks
// actually computed remotely.
func TestClusterByteIdentical(t *testing.T) {
	want := referenceBytes(t)
	for _, n := range []int{1, 3} {
		urls := startWorkers(t, n, nil)
		got, cc := clusterRun(t, urls, nil)
		assertIdentical(t, got, want)
		if cc.TasksRemote == 0 {
			t.Fatalf("%d workers: no tasks were computed remotely", n)
		}
		if cc.ShardsAcked == 0 || cc.ShardsAcked != cc.ShardsDispatched-cc.ShardsRequeued {
			t.Fatalf("%d workers: shards dispatched/acked/requeued = %d/%d/%d",
				n, cc.ShardsDispatched, cc.ShardsAcked, cc.ShardsRequeued)
		}
	}
}

// TestChaosWorkerKilledMidShard kills the TCP connection of the fleet's
// first shard request — a worker crashing while holding a shard. The
// coordinator requeues the shard and the figure is unharmed.
func TestChaosWorkerKilledMidShard(t *testing.T) {
	want := referenceBytes(t)
	var kills atomic.Int64
	urls := startWorkers(t, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isShardRequest(r) && kills.Add(1) == 1 {
				panic(http.ErrAbortHandler) // slam the connection shut mid-response
			}
			h.ServeHTTP(w, r)
		})
	})
	got, cc := clusterRun(t, urls, nil)
	assertIdentical(t, got, want)
	if kills.Load() > 0 && cc.ShardsRequeued == 0 {
		t.Fatal("a shard connection was killed but nothing was requeued")
	}
	if cc.TasksRemote == 0 {
		t.Fatal("no tasks were computed remotely")
	}
}

// TestChaosLatencySpike delays every shard response on one worker well past
// the others. Slow is not wrong: the bytes must still be identical.
func TestChaosLatencySpike(t *testing.T) {
	want := referenceBytes(t)
	urls := startWorkers(t, 2, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isShardRequest(r) {
				time.Sleep(100 * time.Millisecond)
			}
			h.ServeHTTP(w, r)
		})
	})
	got, cc := clusterRun(t, urls, nil)
	assertIdentical(t, got, want)
	if cc.TasksRemote == 0 {
		t.Fatal("no tasks were computed remotely")
	}
}

// TestChaosCorruptResponses breaks the CRC of every shard result from every
// worker: validation must reject each response and the whole sweep must
// degrade to local execution — corrupt data can never reach a figure.
func TestChaosCorruptResponses(t *testing.T) {
	want := referenceBytes(t)
	urls := startWorkers(t, 2, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !isShardRequest(r) {
				h.ServeHTTP(w, r)
				return
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			var resp cluster.ShardResponse
			if rec.Code == http.StatusOK && json.Unmarshal(body, &resp) == nil {
				for j := range resp.Results {
					resp.Results[j].CRC ^= 0xDEAD
				}
				body, _ = json.Marshal(resp)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(rec.Code)
			w.Write(body)
		})
	})
	got, cc := clusterRun(t, urls, nil)
	assertIdentical(t, got, want)
	if cc.TasksRemote != 0 {
		t.Fatalf("TasksRemote = %d: corrupt results were applied", cc.TasksRemote)
	}
	if cc.ShardsRequeued == 0 || cc.ShardsLocal == 0 {
		t.Fatalf("shards requeued/local = %d/%d, want both > 0", cc.ShardsRequeued, cc.ShardsLocal)
	}
}

// TestChaosZeroFleet points the coordinator at a worker that is already
// gone: graceful degradation means the run completes locally, byte-identical.
func TestChaosZeroFleet(t *testing.T) {
	want := referenceBytes(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	got, cc := clusterRun(t, []string{deadURL}, nil)
	assertIdentical(t, got, want)
	if cc.TasksRemote != 0 {
		t.Fatalf("TasksRemote = %d with a dead fleet", cc.TasksRemote)
	}
	if cc.ShardsLocal == 0 {
		t.Fatal("no shards recorded the local fallback")
	}
}

// TestChaosCoordinatorRestart: run once against a healthy fleet with a
// durable ledger, kill the coordinator, and run again with a fleet that
// refuses all shard work. The restarted coordinator must resume entirely
// from acked ledger records — zero dispatches — and render identical bytes.
func TestChaosCoordinatorRestart(t *testing.T) {
	want := referenceBytes(t)
	opts := chaosOptions()
	path := filepath.Join(t.TempDir(), "shards.ledger")

	l1, err := cluster.OpenLedger(path, opts.Normalized().Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	urls := startWorkers(t, 2, nil)
	got, cc := clusterRun(t, urls, l1)
	assertIdentical(t, got, want)
	if cc.TasksRemote == 0 {
		t.Fatal("first run computed nothing remotely")
	}
	if l1.Appended() == 0 {
		t.Fatal("first run acked shards but the ledger recorded nothing")
	}
	if err := l1.Close(); err != nil {
		t.Fatalf("closing ledger after first run: %v", err)
	}

	// The coordinator is gone; its replacement faces a fleet that rejects
	// every shard request.
	l2, err := cluster.OpenLedger(path, opts.Normalized().Fingerprint())
	if err != nil {
		t.Fatalf("reopening ledger: %v", err)
	}
	defer l2.Close()
	if l2.Replayed() == 0 {
		t.Fatal("reopened ledger replayed nothing")
	}
	refusing := startWorkers(t, 1, func(_ int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isShardRequest(r) {
				http.Error(w, "shard execution disabled", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	got2, cc2 := clusterRun(t, refusing, l2)
	assertIdentical(t, got2, want)
	if cc2.TasksLedger == 0 {
		t.Fatal("restarted coordinator replayed nothing from the ledger")
	}
	if cc2.ShardsDispatched != 0 {
		t.Fatalf("restarted coordinator dispatched %d shards; the ledger already held every task", cc2.ShardsDispatched)
	}
}

// TestChaosResultCacheByteIdentical: a sweep acked by the fleet populates
// the coordinator's result cache; a second coordinator on the same cache
// directory renders identical bytes against a fleet that refuses all shard
// work, without dispatching a single shard — cached task values fully
// replace the fleet.
func TestChaosResultCacheByteIdentical(t *testing.T) {
	want := referenceBytes(t)
	dir := t.TempDir()
	openCache := func() *resultcache.Cache {
		cache, err := resultcache.New(resultcache.Config{MaxEntries: 4096, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return cache
	}

	urls := startWorkers(t, 2, nil)
	got, cc := clusterRunCached(t, urls, nil, openCache())
	assertIdentical(t, got, want)
	if cc.TasksRemote == 0 {
		t.Fatal("seed run computed nothing remotely")
	}

	refusing := startWorkers(t, 1, func(_ int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if isShardRequest(r) {
				http.Error(w, "shard execution disabled", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	got2, cc2 := clusterRunCached(t, refusing, nil, openCache())
	assertIdentical(t, got2, want)
	if cc2.ShardsDispatched != 0 {
		t.Fatalf("cached coordinator dispatched %d shards; the cache already held every task", cc2.ShardsDispatched)
	}
}
