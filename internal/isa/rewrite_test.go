package isa

import (
	"testing"

	"prefetchlab/internal/ref"
)

// strided builds: loop(n) { load [r]; r += 64 }.
func strided(n int64) *Program {
	b := NewBuilder("s")
	r, v := b.Reg(), b.Reg()
	b.MovI(r, 1<<30)
	b.Loop(n, func() {
		b.Load(v, r, 0)
		b.AddI(r, 64)
	})
	return b.MustProgram()
}

func TestInsertPrefetchesPlacesAfterLoad(t *testing.T) {
	prog := strided(10)
	rw, err := InsertPrefetches(prog, []Insertion{{PC: 0, Distance: 256}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(rw)
	if err != nil {
		t.Fatal(err)
	}
	var refs []ref.Ref
	Trace(c, SinkFunc(func(r ref.Ref) { refs = append(refs, r) }))
	if len(refs) != 20 {
		t.Fatalf("refs = %d, want 20 (load+prefetch per iteration)", len(refs))
	}
	for i := 0; i < 20; i += 2 {
		if refs[i].Kind != ref.Load || refs[i+1].Kind != ref.Prefetch {
			t.Fatalf("ordering broken at %d: %v %v", i, refs[i].Kind, refs[i+1].Kind)
		}
		if refs[i+1].Addr != refs[i].Addr+256 {
			t.Fatalf("prefetch addr = %d, want load+256 = %d", refs[i+1].Addr, refs[i].Addr+256)
		}
	}
}

func TestInsertNTAKind(t *testing.T) {
	rw, err := InsertPrefetches(strided(4), []Insertion{{PC: 0, Distance: 64, NTA: true}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(rw)
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	Trace(c, SinkFunc(func(r ref.Ref) {
		if r.Kind == ref.PrefetchNTA {
			seen = true
		}
	}))
	if !seen {
		t.Fatal("no PREFETCHNTA in trace")
	}
}

func TestInsertNegativeDistance(t *testing.T) {
	// Descending loops prefetch downward.
	b := NewBuilder("desc")
	r, v := b.Reg(), b.Reg()
	b.MovI(r, 1<<30)
	b.Loop(4, func() {
		b.Load(v, r, 0)
		b.AddI(r, -64)
	})
	rw, err := InsertPrefetches(b.MustProgram(), []Insertion{{PC: 0, Distance: -128}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(rw)
	if err != nil {
		t.Fatal(err)
	}
	var last ref.Ref
	ok := true
	Trace(c, SinkFunc(func(r ref.Ref) {
		if r.Kind == ref.Prefetch && r.Addr != last.Addr-128 {
			ok = false
		}
		last = r
	}))
	if !ok {
		t.Fatal("descending prefetch address wrong")
	}
}

func TestInsertUnknownPC(t *testing.T) {
	if _, err := InsertPrefetches(strided(4), []Insertion{{PC: 99, Distance: 64}}); err == nil {
		t.Fatal("expected unknown-PC error")
	}
}

func TestInsertDuplicatePC(t *testing.T) {
	ins := []Insertion{{PC: 0, Distance: 64}, {PC: 0, Distance: 128}}
	if _, err := InsertPrefetches(strided(4), ins); err == nil {
		t.Fatal("expected duplicate-PC error")
	}
}

func TestInsertionPreservesDemandPCs(t *testing.T) {
	b := NewBuilder("multi")
	r, v := b.Reg(), b.Reg()
	b.MovI(r, 1<<30)
	b.Loop(4, func() {
		b.Load(v, r, 0)
		b.Load(v, r, 8)
		b.Store(v, r, 16)
		b.AddI(r, 64)
	})
	prog := b.MustProgram()
	orig, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := InsertPrefetches(prog, []Insertion{{PC: 0, Distance: 64}, {PC: 2, Distance: 128}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(rw)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDemandPCs != orig.NumDemandPCs {
		t.Fatalf("demand PCs changed: %d vs %d", c.NumDemandPCs, orig.NumDemandPCs)
	}
	// The demand instructions keep their ops in the same PC order.
	for pc := 0; pc < orig.NumDemandPCs; pc++ {
		if c.PCs[pc].Op != orig.PCs[pc].Op {
			t.Fatalf("pc %d op changed: %v vs %v", pc, c.PCs[pc].Op, orig.PCs[pc].Op)
		}
	}
}

func TestStripPrefetchesRoundTrip(t *testing.T) {
	prog := strided(6)
	rw, err := InsertPrefetches(prog, []Insertion{{PC: 0, Distance: 64, NTA: true}})
	if err != nil {
		t.Fatal(err)
	}
	back := StripPrefetches(rw)
	cOrig, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	cBack, err := Compile(back)
	if err != nil {
		t.Fatal(err)
	}
	if cBack.NumPCs() != cOrig.NumPCs() {
		t.Fatalf("strip did not restore PC count: %d vs %d", cBack.NumPCs(), cOrig.NumPCs())
	}
	var a, b2 []ref.Ref
	Trace(cOrig, SinkFunc(func(r ref.Ref) { a = append(a, r) }))
	Trace(cBack, SinkFunc(func(r ref.Ref) { b2 = append(b2, r) }))
	if len(a) != len(b2) {
		t.Fatalf("trace lengths differ after strip: %d vs %d", len(a), len(b2))
	}
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("trace differs at %d", i)
		}
	}
}

func TestInsertedPrefetchSharesBaseRegister(t *testing.T) {
	// The inserted prefetch must use the load's base register, so it
	// tracks the same address stream (§VI-C).
	prog := strided(4)
	rw, err := InsertPrefetches(prog, []Insertion{{PC: 0, Distance: 192}})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			for i, in := range n.Code {
				if in.Op == OpPrefetch {
					prev := n.Code[i-1]
					if prev.Op != OpLoad || prev.Base != in.Base {
						t.Fatalf("prefetch not sharing base with preceding load: %+v after %+v", in, prev)
					}
					if in.Imm != prev.Imm+192 {
						t.Fatalf("prefetch offset = %d, want %d", in.Imm, prev.Imm+192)
					}
					found = true
				}
			}
			return
		}
		for _, ch := range n.Body {
			walk(ch)
		}
	}
	walk(rw.Root)
	if !found {
		t.Fatal("no prefetch found in rewritten tree")
	}
}
