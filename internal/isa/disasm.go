package isa

import (
	"fmt"
	"io"
	"strings"
)

// Disasm writes a human-readable listing of the program: loop structure as
// indentation, memory instructions annotated with their PCs (matching the
// numbering Compile assigns — demand accesses first, then prefetches), and
// base+offset addressing in the `off(base)` style of the paper's §VI-C.
func Disasm(w io.Writer, p *Program) error {
	c, err := Compile(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "program %q: %d static memory instructions (%d demand)\n",
		p.Name, c.NumPCs(), c.NumDemandPCs)
	nextDemand := 0
	nextPref := c.NumDemandPCs
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.IsLeaf() {
			for _, in := range n.Code {
				switch {
				case in.Op.IsDemand():
					fmt.Fprintf(w, "%s%-4s r%d, %d(r%d)\t; pc=%d\n",
						indent, mnemonic(in.Op), in.Dst, in.Imm, in.Base, nextDemand)
					nextDemand++
				case in.Op.IsMem():
					fmt.Fprintf(w, "%s%-4s %d(r%d)\t; pc=%d\n",
						indent, mnemonic(in.Op), in.Imm, in.Base, nextPref)
					nextPref++
				default:
					fmt.Fprintf(w, "%s%s\n", indent, formatALU(in))
				}
			}
			return
		}
		fmt.Fprintf(w, "%sloop %d {\n", indent, n.Count)
		for _, ch := range n.Body {
			walk(ch, depth+1)
		}
		fmt.Fprintf(w, "%s}\n", indent)
	}
	walk(p.Root, 0)
	return nil
}

// mnemonic maps memory opcodes to their listing names.
func mnemonic(op Opcode) string {
	switch op {
	case OpLoad:
		return "ld"
	case OpStore:
		return "st"
	case OpPrefetch:
		return "prefetch"
	case OpPrefetchNTA:
		return "prefetchnta"
	default:
		return op.String()
	}
}

// formatALU renders a non-memory instruction.
func formatALU(in Instr) string {
	switch in.Op {
	case OpMovI:
		return fmt.Sprintf("mov  r%d, #%d", in.Dst, in.Imm)
	case OpAddI:
		return fmt.Sprintf("add  r%d, #%d", in.Dst, in.Imm)
	case OpMovR:
		return fmt.Sprintf("mov  r%d, r%d", in.Dst, in.Base)
	case OpAddR:
		return fmt.Sprintf("add  r%d, r%d", in.Dst, in.Base)
	case OpMulI:
		return fmt.Sprintf("mul  r%d, #%d", in.Dst, in.Imm)
	case OpAndI:
		return fmt.Sprintf("and  r%d, #%d", in.Dst, in.Imm)
	case OpShrI:
		return fmt.Sprintf("shr  r%d, #%d", in.Dst, in.Imm)
	case OpCompute:
		return fmt.Sprintf("work #%d", in.Imm)
	default:
		return in.Op.String()
	}
}
