package isa

import (
	"fmt"
	"sort"

	"prefetchlab/internal/ref"
)

// Insertion describes one software prefetch to add: directly after the
// demand instruction PC, insert `prefetch[nta] Distance(base)` reusing the
// instruction's base register, exactly as the paper's §VI-C:
//
//	A: load (base), dst
//	   prefetch[nta] prefetch-distance(base)
//
// Distance is a signed byte offset added to the original addressing offset
// (negative for descending strides).
type Insertion struct {
	PC       ref.PC
	Distance int64
	NTA      bool
}

// InsertPrefetches returns a copy of the program with the given prefetches
// inserted. Demand-instruction PC numbering is stable under insertion (the
// compiler numbers demand PCs before prefetch PCs), so per-PC statistics of
// the original and rewritten programs are directly comparable.
func InsertPrefetches(p *Program, ins []Insertion) (*Program, error) {
	byPC := make(map[ref.PC]Insertion, len(ins))
	for _, i := range ins {
		if _, dup := byPC[i.PC]; dup {
			return nil, fmt.Errorf("isa: duplicate insertion for pc %d", i.PC)
		}
		byPC[i.PC] = i
	}
	// Walk in the compiler's traversal order, counting demand ops to match
	// PCs, and copy the tree with prefetches spliced in.
	nextDemand := ref.PC(0)
	used := make(map[ref.PC]bool, len(byPC))
	var clone func(n *Node) (*Node, error)
	clone = func(n *Node) (*Node, error) {
		if n.IsLeaf() {
			out := &Node{Code: make([]Instr, 0, len(n.Code)+2)}
			for _, in := range n.Code {
				out.Code = append(out.Code, in)
				if !in.Op.IsDemand() {
					continue
				}
				pc := nextDemand
				nextDemand++
				i, ok := byPC[pc]
				if !ok {
					continue
				}
				used[pc] = true
				op := OpPrefetch
				if i.NTA {
					op = OpPrefetchNTA
				}
				out.Code = append(out.Code, Instr{Op: op, Base: in.Base, Imm: in.Imm + i.Distance})
			}
			return out, nil
		}
		out := &Node{Count: n.Count, Body: make([]*Node, 0, len(n.Body))}
		for _, ch := range n.Body {
			c, err := clone(ch)
			if err != nil {
				return nil, err
			}
			out.Body = append(out.Body, c)
		}
		return out, nil
	}
	root, err := clone(p.Root)
	if err != nil {
		return nil, err
	}
	if len(used) != len(byPC) {
		missing := make([]int, 0)
		for pc := range byPC {
			if !used[pc] {
				missing = append(missing, int(pc))
			}
		}
		sort.Ints(missing)
		return nil, fmt.Errorf("isa: insertions reference unknown demand PCs %v", missing)
	}
	return &Program{Name: p.Name, Root: root, Mem: p.Mem}, nil
}

// StripPrefetches returns a copy of the program with all software prefetch
// instructions removed (useful for deriving a clean baseline).
func StripPrefetches(p *Program) *Program {
	var clone func(n *Node) *Node
	clone = func(n *Node) *Node {
		if n.IsLeaf() {
			out := &Node{Code: make([]Instr, 0, len(n.Code))}
			for _, in := range n.Code {
				if in.Op == OpPrefetch || in.Op == OpPrefetchNTA {
					continue
				}
				out.Code = append(out.Code, in)
			}
			return out
		}
		out := &Node{Count: n.Count, Body: make([]*Node, 0, len(n.Body))}
		for _, ch := range n.Body {
			out.Body = append(out.Body, clone(ch))
		}
		return out
	}
	return &Program{Name: p.Name, Root: clone(p.Root), Mem: p.Mem}
}
