package isa

import (
	"math"
	"sort"

	"prefetchlab/internal/ref"
)

// This file exposes the static program structure that analyses need without
// re-deriving it by hand: per-PC loop nesting (trip counts and demand
// references per iteration at every depth), per-PC dynamic execution counts
// and intra-iteration positions, per-node load/store listings, and a
// concurrency-safe region lookup on the memory image. The static profiler
// (internal/staticprof) is the primary consumer.

// LoopFrame describes one loop on a memory instruction's nesting path.
type LoopFrame struct {
	// Count is the loop's trip count.
	Count int64
	// Refs is the number of demand (load/store) references executed by one
	// full iteration of this loop, nested loops fully expanded. Saturates at
	// MaxUint64; see Meta.Saturated.
	Refs uint64
}

// PCMeta is the static structural context of one memory instruction.
type PCMeta struct {
	// Loops is the instruction's enclosing loop path, outermost first. The
	// slice is shared between PCs under the same loop; treat it as read-only.
	Loops []LoopFrame
	// Pos is the number of demand references executed before this
	// instruction within one iteration of its innermost enclosing loop.
	Pos uint64
	// Execs is the instruction's total dynamic execution count (the product
	// of all enclosing trip counts). Saturates at MaxUint64.
	Execs uint64
}

// Innermost returns the innermost enclosing loop, if any.
func (pm PCMeta) Innermost() (LoopFrame, bool) {
	if len(pm.Loops) == 0 {
		return LoopFrame{}, false
	}
	return pm.Loops[len(pm.Loops)-1], true
}

// Meta is the whole-program structural metadata derived from the tree:
// one PCMeta per static memory instruction plus program-wide totals. Built
// once per Compiled (see Compiled.Meta) and immutable afterwards.
type Meta struct {
	perPC     []PCMeta
	total     uint64
	saturated bool
}

// PC returns the structural metadata of one memory instruction.
func (m *Meta) PC(pc ref.PC) (PCMeta, bool) {
	if int(pc) < 0 || int(pc) >= len(m.perPC) {
		return PCMeta{}, false
	}
	return m.perPC[pc], true
}

// TotalDemandRefs returns the program's total demand reference count
// (saturating at MaxUint64).
func (m *Meta) TotalDemandRefs() uint64 { return m.total }

// Saturated reports whether any count overflowed uint64 during derivation;
// consumers that need exact arithmetic should reject saturated metadata.
func (m *Meta) Saturated() bool { return m.saturated }

// Meta returns the program's structural metadata, derived on first use and
// cached for the Compiled's lifetime. Safe for concurrent use.
func (c *Compiled) Meta() *Meta {
	c.metaOnce.Do(func() { c.meta = buildMeta(c) })
	return c.meta
}

func (m *Meta) add(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		m.saturated = true
		return math.MaxUint64
	}
	return a + b
}

func (m *Meta) mul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		m.saturated = true
		return math.MaxUint64
	}
	return a * b
}

// buildMeta walks the tree in the same traversal order Compile uses to
// assign PCs (demand instructions first, prefetches after), so the PCMeta
// index matches Compiled.PCs exactly.
func buildMeta(c *Compiled) *Meta {
	m := &Meta{perPC: make([]PCMeta, len(c.PCs))}

	refs := make(map[*Node]uint64)
	var demandRefs func(n *Node) uint64
	demandRefs = func(n *Node) uint64 {
		if v, ok := refs[n]; ok {
			return v
		}
		var total uint64
		if n.IsLeaf() {
			for _, in := range n.Code {
				if in.Op.IsDemand() {
					total++
				}
			}
		} else {
			var body uint64
			for _, ch := range n.Body {
				body = m.add(body, demandRefs(ch))
			}
			total = m.mul(uint64(n.Count), body)
		}
		refs[n] = total
		return total
	}

	nextDemand := 0
	nextPref := c.NumDemandPCs
	var walk func(n *Node, loops []LoopFrame, execs uint64, pos *uint64)
	walk = func(n *Node, loops []LoopFrame, execs uint64, pos *uint64) {
		if n.IsLeaf() {
			for _, in := range n.Code {
				if !in.Op.IsMem() {
					continue
				}
				var pc int
				if in.Op.IsDemand() {
					pc = nextDemand
					nextDemand++
				} else {
					pc = nextPref
					nextPref++
				}
				m.perPC[pc] = PCMeta{Loops: loops, Pos: *pos, Execs: execs}
				if in.Op.IsDemand() {
					*pos = m.add(*pos, 1)
				}
			}
			return
		}
		var body uint64
		for _, ch := range n.Body {
			body = m.add(body, demandRefs(ch))
		}
		frame := LoopFrame{Count: n.Count, Refs: body}
		inner := append(append([]LoopFrame(nil), loops...), frame)
		var innerPos uint64
		for _, ch := range n.Body {
			walk(ch, inner, m.mul(execs, uint64(n.Count)), &innerPos)
		}
		*pos = m.add(*pos, m.mul(uint64(n.Count), body))
	}
	rootPos := new(uint64)
	walk(c.Prog.Root, nil, 1, rootPos)
	m.total = demandRefs(c.Prog.Root)
	return m
}

// Loads returns the load instructions in the node's subtree, in traversal
// order (each static instruction once, regardless of trip counts).
func (n *Node) Loads() []Instr { return n.memOps(OpLoad) }

// Stores returns the store instructions in the node's subtree, in traversal
// order.
func (n *Node) Stores() []Instr { return n.memOps(OpStore) }

func (n *Node) memOps(op Opcode) []Instr {
	var out []Instr
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			for _, in := range n.Code {
				if in.Op == op {
					out = append(out, in)
				}
			}
			return
		}
		for _, ch := range n.Body {
			walk(ch)
		}
	}
	walk(n)
	return out
}

// FindRegion returns the backed region containing addr, or nil. Unlike the
// internal read path it does not touch the recently-hit cache, so it is safe
// for concurrent readers sharing one memory image.
func (m *Memory) FindRegion(addr uint64) *Region {
	if m == nil {
		return nil
	}
	i := sort.Search(len(m.regions), func(i int) bool {
		r := m.regions[i]
		return addr < r.Base+r.Size()
	})
	if i < len(m.regions) && addr >= m.regions[i].Base {
		return m.regions[i]
	}
	return nil
}

// Regions returns the backed regions in base-address order. The returned
// slice is a copy; the regions themselves are shared.
func (m *Memory) Regions() []*Region {
	if m == nil {
		return nil
	}
	out := make([]*Region, len(m.regions))
	copy(out, m.regions)
	return out
}
