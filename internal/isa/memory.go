package isa

import (
	"fmt"
	"sort"
)

// Memory holds the data values a program can observe through loads. Only
// pointer-structured data (linked lists, index arrays, …) needs backing
// values; plain streaming arrays are address ranges with no backing and read
// as zero. Regions are 8-byte-word granular.
//
// Programs that store into backed regions mutate them, so each simulation
// run works on a Clone of the program's initial image.
type Memory struct {
	regions []*Region
	last    *Region // most recently hit region (chases are bursty)
}

// Region is one contiguous backed address range.
type Region struct {
	Name string
	Base uint64
	data []int64 // one word per 8 bytes
}

// Size returns the region size in bytes.
func (r *Region) Size() uint64 { return uint64(len(r.data)) * 8 }

// NewMemory returns an empty memory image.
func NewMemory() *Memory { return &Memory{} }

// AddRegion registers a backed region of size bytes (rounded up to 8) at
// base. Regions must not overlap.
func (m *Memory) AddRegion(name string, base, size uint64) (*Region, error) {
	words := (size + 7) / 8
	r := &Region{Name: name, Base: base, data: make([]int64, words)}
	for _, ex := range m.regions {
		if base < ex.Base+ex.Size() && ex.Base < base+words*8 {
			return nil, fmt.Errorf("isa: region %q overlaps %q", name, ex.Name)
		}
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	return r, nil
}

// find returns the region containing addr, or nil.
func (m *Memory) find(addr uint64) *Region {
	if r := m.last; r != nil && addr >= r.Base && addr < r.Base+r.Size() {
		return r
	}
	// Typically 1–4 regions; binary search keeps big images fast too.
	i := sort.Search(len(m.regions), func(i int) bool {
		r := m.regions[i]
		return addr < r.Base+r.Size()
	})
	if i < len(m.regions) && addr >= m.regions[i].Base {
		m.last = m.regions[i]
		return m.regions[i]
	}
	return nil
}

// Read returns the 8-byte word at addr (0 for unbacked addresses).
func (m *Memory) Read(addr uint64) int64 {
	if r := m.find(addr); r != nil {
		return r.data[(addr-r.Base)/8]
	}
	return 0
}

// Write stores an 8-byte word at addr; writes to unbacked addresses are
// dropped (the reference is still visible to the memory system).
func (m *Memory) Write(addr uint64, v int64) {
	if r := m.find(addr); r != nil {
		r.data[(addr-r.Base)/8] = v
	}
}

// SetWord writes word index i of region r.
func (r *Region) SetWord(i uint64, v int64) { r.data[i] = v }

// Word reads word index i of region r.
func (r *Region) Word(i uint64) int64 { return r.data[i] }

// Words returns the number of 8-byte words in the region.
func (r *Region) Words() uint64 { return uint64(len(r.data)) }

// Clone deep-copies the memory image.
func (m *Memory) Clone() *Memory {
	if m == nil {
		return nil
	}
	out := &Memory{regions: make([]*Region, len(m.regions))}
	for i, r := range m.regions {
		nr := &Region{Name: r.Name, Base: r.Base, data: make([]int64, len(r.data))}
		copy(nr.data, r.data)
		out.regions[i] = nr
	}
	return out
}
