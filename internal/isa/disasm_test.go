package isa

import (
	"bytes"
	"strings"
	"testing"
)

func TestDisasm(t *testing.T) {
	b := NewBuilder("d")
	r, v := b.Reg(), b.Reg()
	b.MovI(r, 4096)
	b.Loop(8, func() {
		b.Load(v, r, 0)
		b.Prefetch(r, 128)
		b.Store(v, r, 8)
		b.AddI(r, 64)
		b.Compute(5)
	})
	var buf bytes.Buffer
	if err := Disasm(&buf, b.MustProgram()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`program "d"`,
		"3 static memory instructions (2 demand)",
		"loop 8 {",
		"ld   r1, 0(r0)\t; pc=0",
		"st   r1, 8(r0)\t; pc=1",
		"prefetch 128(r0)\t; pc=2", // prefetch PCs follow demand PCs
		"work #5",
		"add  r0, #64",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Loop bodies are indented one level.
	if !strings.Contains(out, "  ld") {
		t.Error("loop body not indented")
	}
}

func TestDisasmRejectsInvalid(t *testing.T) {
	bad := &Program{Name: "bad"}
	var buf bytes.Buffer
	if err := Disasm(&buf, bad); err == nil {
		t.Fatal("expected compile error")
	}
}
