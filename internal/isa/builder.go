package isa

import "fmt"

// Builder constructs program trees ergonomically. Workloads allocate
// registers and address arenas, then emit instructions inside nested Loop
// calls. The zero value is not usable; call NewBuilder.
type Builder struct {
	prog     *Program
	stack    []*Node // innermost last
	nextReg  Reg
	nextBase uint64
	arenaSeq uint64
	err      error
}

// arenaAlign spaces arenas far apart so distinct data structures never share
// cache lines or pages.
const arenaAlign = 1 << 30

// arenaStagger offsets successive arenas by a line-aligned amount that is
// not a multiple of any cache's set span, so distinct arrays start in
// different sets (as real heap allocations do) instead of conflicting on
// set 0 of every cache.
const arenaStagger = 132<<10 + 64

// NewBuilder starts a new program named name.
func NewBuilder(name string) *Builder {
	root := &Node{Count: 1, Body: nil}
	return &Builder{
		prog:     &Program{Name: name, Root: root, Mem: NewMemory()},
		stack:    []*Node{root},
		nextBase: arenaAlign,
	}
}

// fail records the first error.
func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("isa builder %q: %s", b.prog.Name, fmt.Sprintf(format, args...))
	}
}

// Errorf records a construction error from workload code (e.g. a degenerate
// arena geometry); the first error sticks and is returned by Program.
func (b *Builder) Errorf(format string, args ...any) { b.fail(format, args...) }

// Reg allocates a fresh register.
func (b *Builder) Reg() Reg {
	if int(b.nextReg) >= NumRegs {
		b.fail("out of registers")
		return 0
	}
	r := b.nextReg
	b.nextReg++
	return r
}

// Arena reserves size bytes of address space with no backing values (plain
// streaming data reads as zero). Returns the base address.
func (b *Builder) Arena(size uint64) uint64 {
	base := b.nextBase + b.arenaSeq*arenaStagger
	b.arenaSeq++
	n := (size + arenaStagger*b.arenaSeq + arenaAlign - 1) / arenaAlign
	if n == 0 {
		n = 1
	}
	b.nextBase += n * arenaAlign
	return base
}

// Backed reserves size bytes of address space with value backing, for
// pointer-structured data. Returns the region for initialization.
func (b *Builder) Backed(name string, size uint64) *Region {
	base := b.Arena(size)
	r, err := b.prog.Mem.AddRegion(name, base, size)
	if err != nil {
		b.fail("%v", err)
		return &Region{Name: name, Base: base, data: make([]int64, (size+7)/8)}
	}
	return r
}

// cur returns the innermost open node.
func (b *Builder) cur() *Node { return b.stack[len(b.stack)-1] }

// leaf returns the trailing leaf of the innermost node, creating one.
func (b *Builder) leaf() *Node {
	cur := b.cur()
	if n := len(cur.Body); n > 0 && cur.Body[n-1].IsLeaf() {
		return cur.Body[n-1]
	}
	l := &Node{Code: []Instr{}}
	cur.Body = append(cur.Body, l)
	return l
}

// emit appends an instruction to the current leaf.
func (b *Builder) emit(in Instr) {
	l := b.leaf()
	l.Code = append(l.Code, in)
}

// Loop emits a counted loop; body builds its contents.
func (b *Builder) Loop(count int64, body func()) {
	if count < 0 {
		b.fail("negative loop count %d", count)
		count = 0
	}
	n := &Node{Count: count}
	b.cur().Body = append(b.cur().Body, n)
	b.stack = append(b.stack, n)
	body()
	b.stack = b.stack[:len(b.stack)-1]
}

// Load emits dst = mem[base+off].
func (b *Builder) Load(dst, base Reg, off int64) {
	b.emit(Instr{Op: OpLoad, Dst: dst, Base: base, Imm: off})
}

// Store emits mem[base+off] = src.
func (b *Builder) Store(src, base Reg, off int64) {
	b.emit(Instr{Op: OpStore, Dst: src, Base: base, Imm: off})
}

// Prefetch emits a software prefetch of mem[base+off].
func (b *Builder) Prefetch(base Reg, off int64) { b.emit(Instr{Op: OpPrefetch, Base: base, Imm: off}) }

// PrefetchNTA emits a non-temporal software prefetch of mem[base+off].
func (b *Builder) PrefetchNTA(base Reg, off int64) {
	b.emit(Instr{Op: OpPrefetchNTA, Base: base, Imm: off})
}

// MovI emits dst = imm.
func (b *Builder) MovI(dst Reg, imm int64) { b.emit(Instr{Op: OpMovI, Dst: dst, Imm: imm}) }

// AddI emits dst += imm.
func (b *Builder) AddI(dst Reg, imm int64) { b.emit(Instr{Op: OpAddI, Dst: dst, Imm: imm}) }

// MovR emits dst = src.
func (b *Builder) MovR(dst, src Reg) { b.emit(Instr{Op: OpMovR, Dst: dst, Base: src}) }

// AddR emits dst += src.
func (b *Builder) AddR(dst, src Reg) { b.emit(Instr{Op: OpAddR, Dst: dst, Base: src}) }

// MulI emits dst *= imm.
func (b *Builder) MulI(dst Reg, imm int64) { b.emit(Instr{Op: OpMulI, Dst: dst, Imm: imm}) }

// AndI emits dst &= imm.
func (b *Builder) AndI(dst Reg, imm int64) { b.emit(Instr{Op: OpAndI, Dst: dst, Imm: imm}) }

// ShrI emits dst = uint64(dst) >> sh.
func (b *Builder) ShrI(dst Reg, sh int64) { b.emit(Instr{Op: OpShrI, Dst: dst, Imm: sh}) }

// Compute emits cycles of non-memory work.
func (b *Builder) Compute(cycles int64) { b.emit(Instr{Op: OpCompute, Imm: cycles}) }

// Program finalizes and returns the built program.
func (b *Builder) Program() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 1 {
		return nil, fmt.Errorf("isa builder %q: unbalanced loops", b.prog.Name)
	}
	return b.prog, nil
}

// MustProgram is Program but panics on error; for static workload tables.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}
