package isa

import (
	"fmt"

	"prefetchlab/internal/ref"
)

// VM executes a compiled program, one memory event at a time.
//
// The VM is a stepper rather than a closed run loop so that a multicore
// scheduler can interleave several VMs by time: NextEvent advances through
// non-memory instructions (charging one cycle each, plus OpCompute cycles)
// until it issues the next memory reference, which it returns along with the
// issue timestamp; the caller then consults the memory system and reports
// the access latency with Complete.
//
// Timing model — out-of-order memory-level parallelism without an OoO core:
// loads do not block at issue. Instead each register carries a ready time;
// an instruction that *reads* a register (a pointer-chase dereference, an
// address computation on a loaded value) stalls until the producing load
// completes, and a reorder-window limit keeps the core from running more
// than Window instructions past an incomplete load. Independent strided
// loads therefore overlap (bounded by the window, as on a real OoO core)
// while dependent pointer chases serialize — the distinction the paper's
// speedups hinge on. Stores never stall (store buffer); prefetches retire
// in their single issue cycle.
type VM struct {
	c      *Compiled
	mem    *Memory
	ip     int
	regs   [NumRegs]int64
	ctrs   []int64
	window int64

	cycles   int64
	instret  int64
	memrefs  int64
	counts   []int64 // dynamic execution count per PC
	done     bool
	regReady [NumRegs]int64

	// outstanding loads, in issue order, for the reorder-window limit.
	pend     []pendLoad
	pendHead int

	// pending demand load waiting for Complete to write its register.
	pendingDst    Reg
	pendingValue  int64
	pendingIsLoad bool
	havePending   bool
}

type pendLoad struct {
	instret int64
	readyAt int64
}

// DefaultWindow is the reorder-window size used when none is configured.
const DefaultWindow = 96

// NewVM creates a VM for the compiled program. The program's initial memory
// image is cloned so runs never interfere.
func NewVM(c *Compiled) *VM {
	return &VM{
		c:      c,
		mem:    c.Prog.Mem.Clone(),
		ctrs:   make([]int64, c.NumCtrs),
		counts: make([]int64, len(c.PCs)),
		window: DefaultWindow,
	}
}

// SetWindow sets the reorder-window size (instructions the core may run
// past an incomplete load); it bounds memory-level parallelism.
func (vm *VM) SetWindow(n int64) {
	if n < 1 {
		n = 1
	}
	vm.window = n
}

// readReg stalls the core until the register's producing load (if any) has
// completed.
func (vm *VM) readReg(r Reg) {
	if vm.regReady[r] > vm.cycles {
		vm.cycles = vm.regReady[r]
	}
}

// retire enforces the reorder window: the instruction at the window edge
// (issue + window) cannot retire before the load completes, so everything
// past that edge executed no earlier than readyAt. When the check runs a
// few instructions late (a Compute block advances instret in one step) the
// overshoot is charged on top of readyAt at one instruction per cycle.
func (vm *VM) retire() {
	for vm.pendHead < len(vm.pend) {
		p := vm.pend[vm.pendHead]
		if deadline := p.instret + vm.window; deadline <= vm.instret {
			// Instructions beyond the window edge executed no earlier than
			// readyAt, at one per cycle.
			min := p.readyAt + (vm.instret - deadline)
			if vm.cycles < min {
				vm.cycles = min
			}
			vm.pendHead++
			continue
		}
		if p.readyAt <= vm.cycles {
			vm.pendHead++
			continue
		}
		break
	}
	if vm.pendHead == len(vm.pend) && vm.pendHead > 0 {
		vm.pend = vm.pend[:0]
		vm.pendHead = 0
	} else if vm.pendHead > 1024 {
		n := copy(vm.pend, vm.pend[vm.pendHead:])
		vm.pend = vm.pend[:n]
		vm.pendHead = 0
	}
}

// Event is the next memory reference issued by the VM.
type Event struct {
	Ref  ref.Ref
	Done bool // true when the program has finished; Ref is invalid
}

// Cycles returns the VM's local clock.
func (vm *VM) Cycles() int64 { return vm.cycles }

// Instructions returns the retired instruction count.
func (vm *VM) Instructions() int64 { return vm.instret }

// MemRefs returns the number of memory references issued so far.
func (vm *VM) MemRefs() int64 { return vm.memrefs }

// Counts returns per-PC dynamic execution counts (live; do not mutate).
func (vm *VM) Counts() []int64 { return vm.counts }

// Done reports whether the program has finished.
func (vm *VM) Done() bool { return vm.done }

// Compiled returns the program being executed.
func (vm *VM) Compiled() *Compiled { return vm.c }

// NextEvent runs until the next memory reference issues or the program ends.
// Each instruction costs one cycle; OpCompute costs 1+Imm. The returned
// reference is stamped with the VM's clock at issue (use Cycles()).
func (vm *VM) NextEvent() Event {
	if vm.havePending {
		// lint:allow nopanic (API-contract assertion on the per-reference hot loop; sched's recover shim converts escapes to TaskError)
		panic("isa: NextEvent called with a pending access; call Complete first")
	}
	code := vm.c.Code
	for vm.ip < len(code) {
		in := &code[vm.ip]
		vm.retire()
		switch in.op {
		case OpLoad:
			vm.readReg(in.base)
			addr := uint64(vm.regs[in.base] + in.imm)
			vm.cycles++
			vm.instret++
			vm.memrefs++
			vm.counts[in.pc]++
			vm.ip++
			vm.pendingDst = in.dst
			vm.pendingValue = vm.mem.Read(addr)
			vm.pendingIsLoad = true
			vm.havePending = true
			return Event{Ref: ref.Ref{PC: in.pc, Addr: addr, Kind: ref.Load}}
		case OpStore:
			// Stores stall only for their address; the data waits in the
			// store buffer.
			vm.readReg(in.base)
			addr := uint64(vm.regs[in.base] + in.imm)
			vm.cycles++
			vm.instret++
			vm.memrefs++
			vm.counts[in.pc]++
			vm.ip++
			vm.mem.Write(addr, vm.regs[in.dst])
			vm.pendingIsLoad = false
			vm.havePending = true
			return Event{Ref: ref.Ref{PC: in.pc, Addr: addr, Kind: ref.Store}}
		case OpPrefetch, OpPrefetchNTA:
			vm.readReg(in.base)
			addr := uint64(vm.regs[in.base] + in.imm)
			vm.cycles++ // α: a prefetch instruction costs one cycle
			vm.instret++
			vm.memrefs++
			vm.counts[in.pc]++
			vm.ip++
			vm.pendingIsLoad = false
			vm.havePending = true
			return Event{Ref: ref.Ref{PC: in.pc, Addr: addr, Kind: in.op.RefKind()}}
		case OpMovI:
			vm.regs[in.dst] = in.imm
			vm.regReady[in.dst] = 0
		case OpAddI:
			vm.readReg(in.dst)
			vm.regs[in.dst] += in.imm
		case OpMovR:
			vm.readReg(in.base)
			vm.regs[in.dst] = vm.regs[in.base]
			vm.regReady[in.dst] = 0
		case OpAddR:
			vm.readReg(in.base)
			vm.readReg(in.dst)
			vm.regs[in.dst] += vm.regs[in.base]
		case OpMulI:
			vm.readReg(in.dst)
			vm.regs[in.dst] *= in.imm
		case OpAndI:
			vm.readReg(in.dst)
			vm.regs[in.dst] &= in.imm
		case OpShrI:
			vm.readReg(in.dst)
			vm.regs[in.dst] = int64(uint64(vm.regs[in.dst]) >> uint(in.imm))
		case OpCompute:
			// Compute(n) stands for n single-cycle ALU/FP instructions, so
			// it consumes n slots of the reorder window as well as n cycles
			// (the trailing +1 below accounts for the first of them).
			if in.imm > 1 {
				vm.cycles += in.imm - 1
				vm.instret += in.imm - 1
			}
		case opLoopStart:
			vm.ctrs[in.ctr] = in.loopsize
			if in.loopsize == 0 {
				vm.cycles++
				vm.instret++
				vm.ip = int(in.target)
				continue
			}
		case opLoopEnd:
			vm.ctrs[in.ctr]--
			if vm.ctrs[in.ctr] > 0 {
				vm.cycles++
				vm.instret++
				vm.ip = int(in.target)
				continue
			}
		default:
			// lint:allow nopanic (a compiled program cannot contain unknown opcodes unless Builder verification is bypassed)
			panic(fmt.Sprintf("isa: bad opcode %v at ip=%d", in.op, vm.ip))
		}
		vm.cycles++
		vm.instret++
		vm.ip++
	}
	vm.done = true
	return Event{Done: true}
}

// Complete finishes the access returned by the last NextEvent. For loads,
// latency is the access's load-to-use latency beyond the issue cycle: the
// destination register becomes ready at cycles+latency and the load joins
// the reorder window's outstanding set, but the core itself does not stall
// here — it stalls later, at the first use of the value or when the window
// fills. Stores and prefetches pass latency 0.
func (vm *VM) Complete(latency int64) {
	if !vm.havePending {
		// lint:allow nopanic (API-contract assertion on the per-reference hot loop; an error return here would tax every access)
		panic("isa: Complete without a pending access")
	}
	if latency < 0 {
		// lint:allow nopanic (memory systems must return non-negative stalls; a negative one is a simulator bug, not an input error)
		panic("isa: negative latency")
	}
	if vm.pendingIsLoad {
		vm.regs[vm.pendingDst] = vm.pendingValue
		ready := vm.cycles + latency
		vm.regReady[vm.pendingDst] = ready
		if latency > 0 {
			vm.pend = append(vm.pend, pendLoad{instret: vm.instret, readyAt: ready})
		}
	}
	vm.havePending = false
}

// Reset rewinds the VM to the program start with a fresh memory image and
// zeroed statistics.
func (vm *VM) Reset() {
	vm.mem = vm.c.Prog.Mem.Clone()
	vm.ip = 0
	vm.regs = [NumRegs]int64{}
	for i := range vm.ctrs {
		vm.ctrs[i] = 0
	}
	vm.cycles = 0
	vm.instret = 0
	vm.memrefs = 0
	for i := range vm.counts {
		vm.counts[i] = 0
	}
	vm.regReady = [NumRegs]int64{}
	vm.pend = vm.pend[:0]
	vm.pendHead = 0
	vm.done = false
	vm.havePending = false
}

// Sink consumes a reference stream in program order.
type Sink interface {
	Ref(r ref.Ref)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(r ref.Ref)

// Ref implements Sink.
func (f SinkFunc) Ref(r ref.Ref) { f(r) }

// Trace executes the program functionally (no timing) and feeds every memory
// reference to sink in program order. Returns the number of references.
func Trace(c *Compiled, sink Sink) int64 {
	vm := NewVM(c)
	for {
		ev := vm.NextEvent()
		if ev.Done {
			return vm.MemRefs()
		}
		sink.Ref(ev.Ref)
		vm.Complete(0)
	}
}

// MemSystem is the interface the single-core runner uses to time accesses.
// Access is called at the VM-local issue time and returns the stall cycles
// the core observes beyond the one-cycle issue cost. Prefetch kinds must
// return 0 (they are non-blocking); the memory system still initiates fills.
type MemSystem interface {
	Access(now int64, r ref.Ref) (stall int64)
}

// Run executes the program to completion on a single core against mem and
// returns the total cycle count.
func Run(c *Compiled, mem MemSystem) (cycles int64, vm *VM) {
	vm = NewVM(c)
	for {
		ev := vm.NextEvent()
		if ev.Done {
			return vm.Cycles(), vm
		}
		stall := mem.Access(vm.Cycles(), ev.Ref)
		if ev.Ref.Kind.IsPrefetch() && stall != 0 {
			// lint:allow nopanic (prefetches are fire-and-forget by the MemSystem contract; a stall is a memory-model bug)
			panic("isa: memory system stalled a prefetch")
		}
		vm.Complete(stall)
	}
}
