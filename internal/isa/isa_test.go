package isa

import (
	"testing"

	"prefetchlab/internal/ref"
)

// collect traces a program and returns its reference stream.
func collect(t *testing.T, p *Program) []ref.Ref {
	t.Helper()
	c, err := Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var refs []ref.Ref
	Trace(c, SinkFunc(func(r ref.Ref) { refs = append(refs, r) }))
	return refs
}

func TestCompileAssignsDemandPCsBeforePrefetchPCs(t *testing.T) {
	b := NewBuilder("t")
	r := b.Reg()
	v := b.Reg()
	b.MovI(r, 0)
	b.Load(v, r, 0)
	b.Prefetch(r, 64)
	b.Store(v, r, 8)
	p := b.MustProgram()
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDemandPCs != 2 {
		t.Fatalf("NumDemandPCs = %d, want 2", c.NumDemandPCs)
	}
	if c.NumPCs() != 3 {
		t.Fatalf("NumPCs = %d, want 3", c.NumPCs())
	}
	if c.PCs[0].Op != OpLoad || c.PCs[1].Op != OpStore || c.PCs[2].Op != OpPrefetch {
		t.Fatalf("PC ordering wrong: %+v", c.PCs)
	}
}

func TestLoopCounts(t *testing.T) {
	b := NewBuilder("loops")
	r := b.Reg()
	v := b.Reg()
	b.MovI(r, 4096)
	b.Loop(3, func() {
		b.Loop(5, func() {
			b.Load(v, r, 0)
			b.AddI(r, 64)
		})
	})
	refs := collect(t, b.MustProgram())
	if len(refs) != 15 {
		t.Fatalf("got %d refs, want 15", len(refs))
	}
	// Addresses must be strictly strided.
	for i, r := range refs {
		want := uint64(4096 + 64*i)
		if r.Addr != want {
			t.Fatalf("ref %d addr = %d, want %d", i, r.Addr, want)
		}
	}
}

func TestZeroTripLoop(t *testing.T) {
	b := NewBuilder("zero")
	r := b.Reg()
	v := b.Reg()
	b.MovI(r, 0)
	b.Loop(0, func() { b.Load(v, r, 0) })
	b.Store(v, r, 0)
	refs := collect(t, b.MustProgram())
	if len(refs) != 1 || refs[0].Kind != ref.Store {
		t.Fatalf("zero-trip loop executed its body: %v", refs)
	}
}

func TestInnerLoopCountMetadata(t *testing.T) {
	b := NewBuilder("meta")
	r := b.Reg()
	v := b.Reg()
	b.MovI(r, 0)
	b.Loop(7, func() {
		b.Loop(13, func() {
			b.Load(v, r, 0)
		})
		b.Store(v, r, 0)
	})
	c, err := Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PCs[0].LoopCount; got != 13 {
		t.Errorf("load LoopCount = %d, want 13", got)
	}
	if got := c.PCs[1].LoopCount; got != 7 {
		t.Errorf("store LoopCount = %d, want 7", got)
	}
	// Depth includes the builder's implicit top-level loop.
	if c.PCs[0].Depth != 3 || c.PCs[1].Depth != 2 {
		t.Errorf("depths = %d,%d want 3,2", c.PCs[0].Depth, c.PCs[1].Depth)
	}
}

func TestPointerChaseValues(t *testing.T) {
	b := NewBuilder("chase")
	reg := b.Backed("nodes", 4*64)
	// 4 nodes in a cycle 0 → 2 → 1 → 3 → 0.
	next := []uint64{2, 3, 1, 0}
	for i, n := range next {
		reg.SetWord(uint64(i)*8, int64(reg.Base+n*64))
	}
	p := b.Reg()
	b.MovI(p, int64(reg.Base))
	b.Loop(8, func() { b.Load(p, p, 0) })
	refs := collect(t, b.MustProgram())
	wantOrder := []uint64{0, 2, 1, 3, 0, 2, 1, 3}
	for i, r := range refs {
		want := reg.Base + wantOrder[i]*64
		if r.Addr != want {
			t.Fatalf("chase step %d at %#x, want %#x", i, r.Addr, want)
		}
	}
}

func TestVMResetDeterminism(t *testing.T) {
	b := NewBuilder("det")
	reg := b.Backed("n", 16*64)
	p := b.Reg()
	b.MovI(p, int64(reg.Base))
	for i := uint64(0); i < 16; i++ {
		reg.SetWord(i*8, int64(reg.Base+((i+5)%16)*64))
	}
	b.Loop(100, func() { b.Load(p, p, 0); b.Compute(2) })
	prog := b.MustProgram()
	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	run := func(vm *VM) (int64, []ref.Ref) {
		var refs []ref.Ref
		for {
			ev := vm.NextEvent()
			if ev.Done {
				return vm.Cycles(), refs
			}
			refs = append(refs, ev.Ref)
			vm.Complete(7)
		}
	}
	vm := NewVM(c)
	c1, r1 := run(vm)
	vm.Reset()
	c2, r2 := run(vm)
	if c1 != c2 || len(r1) != len(r2) {
		t.Fatalf("reset changed execution: cycles %d vs %d, refs %d vs %d", c1, c2, len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("ref %d differs after reset", i)
		}
	}
}

func TestStallOnUseSerializesChase(t *testing.T) {
	// A pointer chase must pay the full latency per step; independent
	// strided loads must overlap (bounded by the window).
	mkChase := func() *Compiled {
		b := NewBuilder("chase")
		reg := b.Backed("n", 64*64)
		for i := uint64(0); i < 64; i++ {
			reg.SetWord(i*8, int64(reg.Base+((i+1)%64)*64))
		}
		p := b.Reg()
		b.MovI(p, int64(reg.Base))
		b.Loop(64, func() { b.Load(p, p, 0) })
		c, err := Compile(b.MustProgram())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	mkStride := func() *Compiled {
		b := NewBuilder("stride")
		r := b.Reg()
		v := b.Reg()
		b.MovI(r, 1<<20)
		b.Loop(64, func() { b.Load(v, r, 0); b.AddI(r, 64) })
		c, err := Compile(b.MustProgram())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	const lat = 100
	fixed := latencyMem(lat)
	chaseCycles, _ := Run(mkChase(), fixed)
	strideCycles, _ := Run(mkStride(), fixed)
	if chaseCycles < 63*lat {
		t.Errorf("chase cycles = %d, want ≥ %d (fully serialized)", chaseCycles, 63*lat)
	}
	if strideCycles > chaseCycles/4 {
		t.Errorf("strided loads did not overlap: stride %d vs chase %d", strideCycles, chaseCycles)
	}
}

// latencyMem returns a fixed latency for loads, zero otherwise.
type latencyMem int64

func (l latencyMem) Access(now int64, r ref.Ref) int64 {
	if r.Kind == ref.Load {
		return int64(l)
	}
	return 0
}

func TestWindowBoundsMLP(t *testing.T) {
	// With a tiny window the strided loop must approach serial behaviour.
	b := NewBuilder("w")
	r := b.Reg()
	v := b.Reg()
	b.MovI(r, 1<<20)
	b.Loop(256, func() { b.Load(v, r, 0); b.AddI(r, 64) })
	c, err := Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	const lat = 200
	runWin := func(w int64) int64 {
		vm := NewVM(c)
		vm.SetWindow(w)
		for {
			ev := vm.NextEvent()
			if ev.Done {
				return vm.Cycles()
			}
			var stall int64
			if ev.Ref.Kind == ref.Load {
				stall = lat
			}
			vm.Complete(stall)
		}
	}
	small := runWin(2)
	big := runWin(512)
	if small < 256*lat/2 {
		t.Errorf("window=2 cycles = %d, want near-serial ≥ %d", small, 256*lat/2)
	}
	if big > small/10 {
		t.Errorf("large window should overlap: big=%d small=%d", big, small)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	b := NewBuilder("st")
	r := b.Reg()
	v := b.Reg()
	b.MovI(r, 1<<20)
	b.Loop(100, func() { b.Store(v, r, 0); b.AddI(r, 64) })
	c, err := Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	cycles, _ := Run(c, latencyMem(0))
	// ~3 instructions per iteration plus loop overhead.
	if cycles > 600 {
		t.Errorf("store loop cycles = %d, want ≤ 600", cycles)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	for i := 0; i < NumRegs; i++ {
		b.Reg()
	}
	b.Reg() // out of registers
	if _, err := b.Program(); err == nil {
		t.Error("expected out-of-registers error")
	}

	b2 := NewBuilder("neg")
	b2.Loop(-1, func() {})
	if _, err := b2.Program(); err == nil {
		t.Error("expected negative loop count error")
	}
}

func TestCompileRejectsBadRegisters(t *testing.T) {
	p := &Program{Name: "bad", Root: &Node{Count: 1, Body: []*Node{
		{Code: []Instr{{Op: OpLoad, Dst: 40, Base: 0}}},
	}}}
	if _, err := Compile(p); err == nil {
		t.Error("expected register-range error")
	}
}

func TestMemoryRegions(t *testing.T) {
	m := NewMemory()
	r1, err := m.AddRegion("a", 1024, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddRegion("overlap", 1100, 64); err == nil {
		t.Error("expected overlap error")
	}
	r1.SetWord(3, 42)
	if got := m.Read(1024 + 24); got != 42 {
		t.Errorf("Read = %d, want 42", got)
	}
	if got := m.Read(999999); got != 0 {
		t.Errorf("unbacked Read = %d, want 0", got)
	}
	m.Write(1024, 7)
	clone := m.Clone()
	m.Write(1024, 9)
	if clone.Read(1024) != 7 {
		t.Error("clone shares storage with original")
	}
	// Writes to unbacked addresses are dropped silently.
	m.Write(5<<30, 1)
}
