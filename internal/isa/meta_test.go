package isa

import (
	"math"
	"testing"
)

// buildNested constructs:
//
//	root(1) {
//	  passes(3) {
//	    movi r0
//	    inner(5) { load r0+0; store r0+8; addi r0 }
//	    load r1+0            // once per pass
//	  }
//	}
func buildNested(t *testing.T) *Compiled {
	t.Helper()
	b := NewBuilder("meta-test")
	r0, r1 := b.Reg(), b.Reg()
	base := b.Arena(1 << 20)
	b.Loop(3, func() {
		b.MovI(r0, int64(base))
		b.Loop(5, func() {
			b.Load(r0, r0, 0)
			b.Store(r1, r0, 8)
			b.AddI(r0, 64)
		})
		b.Load(r1, r1, 0)
	})
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMetaLoopPathsAndCounts(t *testing.T) {
	c := buildNested(t)
	m := c.Meta()
	if m.Saturated() {
		t.Fatal("unexpected saturation")
	}
	// Per pass: 5*(load+store) + 1 load = 11; total = 3*11 = 33.
	if got := m.TotalDemandRefs(); got != 33 {
		t.Fatalf("TotalDemandRefs = %d, want 33", got)
	}

	// PC 0 = inner load, PC 1 = inner store, PC 2 = per-pass load.
	pm0, ok := m.PC(0)
	if !ok {
		t.Fatal("PC 0 missing")
	}
	if len(pm0.Loops) != 3 {
		t.Fatalf("PC 0 loop depth = %d, want 3 (root, passes, inner)", len(pm0.Loops))
	}
	wantLoops := []LoopFrame{{Count: 1, Refs: 33}, {Count: 3, Refs: 11}, {Count: 5, Refs: 2}}
	for i, want := range wantLoops {
		if pm0.Loops[i] != want {
			t.Errorf("PC 0 loop[%d] = %+v, want %+v", i, pm0.Loops[i], want)
		}
	}
	if inner, ok := pm0.Innermost(); !ok || inner.Count != 5 || inner.Refs != 2 {
		t.Errorf("PC 0 Innermost = %+v/%v, want {5 2}/true", inner, ok)
	}
	if pm0.Pos != 0 || pm0.Execs != 15 {
		t.Errorf("PC 0 pos/execs = %d/%d, want 0/15", pm0.Pos, pm0.Execs)
	}

	pm1, _ := m.PC(1)
	if pm1.Pos != 1 || pm1.Execs != 15 {
		t.Errorf("PC 1 pos/execs = %d/%d, want 1/15", pm1.Pos, pm1.Execs)
	}

	pm2, _ := m.PC(2)
	if len(pm2.Loops) != 2 {
		t.Fatalf("PC 2 loop depth = %d, want 2", len(pm2.Loops))
	}
	// Within one pass iteration the inner loop's 10 refs precede it.
	if pm2.Pos != 10 || pm2.Execs != 3 {
		t.Errorf("PC 2 pos/execs = %d/%d, want 10/3", pm2.Pos, pm2.Execs)
	}
}

func TestMetaPrefetchPCsShareDemandContext(t *testing.T) {
	b := NewBuilder("meta-pref")
	r := b.Reg()
	b.Loop(4, func() {
		b.Load(r, r, 0)
		b.Prefetch(r, 256)
	})
	c, err := Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	m := c.Meta()
	// Demand PC 0 is the load; the prefetch PC follows after all demand PCs.
	pmLoad, _ := m.PC(0)
	pmPref, ok := m.PC(1)
	if !ok {
		t.Fatal("prefetch PC missing")
	}
	if pmPref.Execs != pmLoad.Execs || len(pmPref.Loops) != len(pmLoad.Loops) {
		t.Errorf("prefetch meta %+v diverges from load meta %+v", pmPref, pmLoad)
	}
	// The prefetch does not advance the demand position counter.
	if pmPref.Pos != 1 {
		t.Errorf("prefetch pos = %d, want 1 (after the load)", pmPref.Pos)
	}
}

func TestMetaSaturation(t *testing.T) {
	b := NewBuilder("meta-sat")
	r := b.Reg()
	b.Loop(math.MaxInt64, func() {
		b.Loop(math.MaxInt64, func() {
			b.Load(r, r, 0)
		})
	})
	c, err := Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	m := c.Meta()
	if !m.Saturated() {
		t.Fatal("nested MaxInt64 trip counts must saturate")
	}
	if m.TotalDemandRefs() != math.MaxUint64 {
		t.Errorf("saturated total = %d, want MaxUint64", m.TotalDemandRefs())
	}
}

func TestMetaZeroTripLoop(t *testing.T) {
	b := NewBuilder("meta-zero")
	r := b.Reg()
	b.Loop(0, func() {
		b.Load(r, r, 0)
	})
	c, err := Compile(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	m := c.Meta()
	if m.TotalDemandRefs() != 0 {
		t.Errorf("total = %d, want 0", m.TotalDemandRefs())
	}
	pm, ok := m.PC(0)
	if !ok || pm.Execs != 0 {
		t.Errorf("PC 0 execs = %d/%v, want 0/true", pm.Execs, ok)
	}
}

func TestNodeLoadsStores(t *testing.T) {
	c := buildNested(t)
	root := c.Prog.Root
	loads, stores := root.Loads(), root.Stores()
	if len(loads) != 2 || len(stores) != 1 {
		t.Fatalf("loads/stores = %d/%d, want 2/1", len(loads), len(stores))
	}
	if loads[0].Imm != 0 || loads[1].Imm != 0 || stores[0].Imm != 8 {
		t.Errorf("unexpected instruction offsets: %+v / %+v", loads, stores)
	}
}

func TestFindRegionAndRegions(t *testing.T) {
	m := NewMemory()
	r1, err := m.AddRegion("a", 1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddRegion("b", 1<<21, 4096); err != nil {
		t.Fatal(err)
	}
	if got := m.FindRegion(1<<20 + 100); got != r1 {
		t.Errorf("FindRegion inside a = %v, want region a", got)
	}
	if got := m.FindRegion(1<<20 + 4096); got != nil {
		t.Errorf("FindRegion just past a = %v, want nil", got)
	}
	if got := m.FindRegion(0); got != nil {
		t.Errorf("FindRegion(0) = %v, want nil", got)
	}
	regs := m.Regions()
	if len(regs) != 2 || regs[0].Name != "a" || regs[1].Name != "b" {
		t.Errorf("Regions = %v, want [a b] in base order", regs)
	}
	var nilMem *Memory
	if nilMem.FindRegion(5) != nil || nilMem.Regions() != nil {
		t.Error("nil Memory accessors must return nil")
	}
}
