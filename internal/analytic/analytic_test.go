package analytic

import (
	"math"
	"reflect"
	"testing"

	"prefetchlab/internal/isa"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/statstack"
	"prefetchlab/internal/workloads"
)

// compileBench builds one Table I benchmark at a tiny scale for unit tests.
func compileBench(t *testing.T, name string, scale float64) *isa.Compiled {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := spec.Build(workloads.Input{ID: 0, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	c, err := isa.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// coreOf assembles a full analytic Core the way the pipeline does: sampling
// pass, StatStack fit, counting and latency-response passes.
func coreOf(t *testing.T, name string, scale float64) Core {
	t.Helper()
	c := compileBench(t, name, scale)
	s := sampler.New(sampler.Config{Period: 256, Seed: 7})
	isa.Trace(c, s)
	samples := s.Finish()
	return NewCore(name, statstack.Build(samples), samples, c)
}

func TestCountRefs(t *testing.T) {
	c := compileBench(t, "libquantum", 0.01)
	counts := CountRefs(c)
	if counts.Instructions <= 0 || counts.Loads <= 0 {
		t.Fatalf("implausible counts: %+v", counts)
	}
	if got := counts.Refs(); got != counts.Loads+counts.Stores {
		t.Errorf("Refs() = %d, want loads+stores = %d", got, counts.Loads+counts.Stores)
	}
	if counts.Refs()+counts.Prefetches > counts.Instructions {
		t.Errorf("more memory references than instructions: %+v", counts)
	}
	if again := CountRefs(c); again != counts {
		t.Errorf("CountRefs not deterministic: %+v vs %+v", counts, again)
	}
}

func TestInterpResponse(t *testing.T) {
	lats := []int64{8, 32}
	vals := []float64{1, 3}
	cases := []struct {
		lat  float64
		want float64
	}{
		{0, 0},          // non-positive latency costs nothing
		{-5, 0},         // ...
		{8, 1},          // grid point
		{32, 3},         // grid point
		{20, 2},         // linear between points
		{4, 0.5},        // linear through the origin below the grid
		{56, 5},         // last-segment slope (2/24 per cycle) above the grid
		{1e6, 83333.67}, // stays linear far out
	}
	for _, c := range cases {
		got := interpResponse(lats, vals, c.lat)
		if math.Abs(got-c.want) > 0.05 {
			t.Errorf("interpResponse(%g) = %g, want %g", c.lat, got, c.want)
		}
	}
	// A decreasing tail extrapolates toward zero but never below.
	if got := interpResponse(lats, []float64{3, 1}, 1e6); got != 0 {
		t.Errorf("negative extrapolation = %g, want clamp at 0", got)
	}
	if got := interpResponse(nil, nil, 10); got != 0 {
		t.Errorf("empty grid = %g, want 0", got)
	}
}

func TestInterpDepthLogLinear(t *testing.T) {
	depths := []int64{16, 256}
	at := func(d int) float64 { return []float64{2, 6}[d] }
	if got := interpDepth(depths, 8, at); got != 2 {
		t.Errorf("below grid = %g, want clamp at first point", got)
	}
	if got := interpDepth(depths, 1024, at); got != 6 {
		t.Errorf("above grid = %g, want clamp at last point", got)
	}
	// 64 is the geometric midpoint of [16, 256] — log-linear interpolation
	// lands halfway between the values.
	if got := interpDepth(depths, 64, at); math.Abs(got-4) > 1e-9 {
		t.Errorf("geometric midpoint = %g, want 4", got)
	}
	if got := interpDepth([]int64{32}, 1000, at); got != 2 {
		t.Errorf("single-point grid = %g, want that point", got)
	}
}

func TestBatchWAt(t *testing.T) {
	// No batch data (old or synthetic responses): isolated arrivals.
	var empty LatencyResponse
	if got := empty.BatchWAt(100); got != 1 {
		t.Errorf("empty response BatchWAt = %g, want 1", got)
	}
	mismatched := LatencyResponse{Depths: []int64{16, 256}, BatchW: []float64{4}}
	if got := mismatched.BatchWAt(100); got != 1 {
		t.Errorf("mismatched response BatchWAt = %g, want 1", got)
	}
	r := LatencyResponse{Depths: []int64{16, 256}, BatchW: []float64{4, 0.5}}
	if got := r.BatchWAt(16); got != 4 {
		t.Errorf("BatchWAt(16) = %g, want 4", got)
	}
	// Interpolated or measured values below 1 are clamped: a batch has at
	// least its own transfer.
	if got := r.BatchWAt(256); got != 1 {
		t.Errorf("BatchWAt(256) = %g, want clamp at 1", got)
	}
}

// ld and st build one-line demand refs for depthMem tests.
func ld(line uint64) ref.Ref { return ref.Ref{Addr: line << ref.LineBits, Kind: ref.Load} }
func sr(line uint64) ref.Ref { return ref.Ref{Addr: line << ref.LineBits, Kind: ref.Store} }

func TestDepthMemCapacityAndRecency(t *testing.T) {
	m := newDepthMem(10, 2)
	now := int64(0)
	step := func(r ref.Ref) int64 {
		stall := m.Access(now, r)
		now += 100 // quiet spacing: every entry is its own batch
		return stall
	}
	if got := step(ld(1)); got != 10 {
		t.Fatalf("first touch of line 1 stalled %d, want full latency 10", got)
	}
	if got := step(ld(2)); got != 10 {
		t.Fatalf("first touch of line 2 stalled %d, want 10", got)
	}
	// Touch line 1 again: resident, and now more recent than line 2.
	if got := step(ld(1)); got != 0 {
		t.Fatalf("resident line 1 stalled %d, want 0", got)
	}
	// Line 3 enters a full filter: it must evict line 2 (the LRU), not 1.
	if got := step(ld(3)); got != 10 {
		t.Fatalf("first touch of line 3 stalled %d, want 10", got)
	}
	if got := step(ld(1)); got != 0 {
		t.Errorf("line 1 evicted despite being MRU-refreshed (stall %d)", got)
	}
	if got := step(ld(2)); got != 10 {
		t.Errorf("line 2 not evicted as LRU (stall %d, want 10)", got)
	}
	if m.entries != 4 {
		t.Errorf("entries = %d, want 4 (lines 1, 2, 3 plus line 2's re-entry)", m.entries)
	}
}

func TestDepthMemLateHitAndStores(t *testing.T) {
	m := newDepthMem(50, 4)
	if got := m.Access(0, ld(1)); got != 50 {
		t.Fatalf("entry stall = %d, want 50", got)
	}
	// A load to the in-flight line waits out the remaining latency — the
	// simulator's late hit.
	if got := m.Access(20, ld(1)); got != 30 {
		t.Errorf("late hit at t=20 stalled %d, want 30", got)
	}
	if got := m.Access(60, ld(1)); got != 0 {
		t.Errorf("post-arrival hit stalled %d, want 0", got)
	}
	// Stores enter lines but never stall (write buffer), and prefetch kinds
	// are invisible to the filter.
	if got := m.Access(100, sr(2)); got != 0 {
		t.Errorf("store stalled %d, want 0", got)
	}
	if got := m.Access(200, ref.Ref{Addr: 3 << ref.LineBits, Kind: ref.Prefetch}); got != 0 {
		t.Errorf("prefetch stalled %d, want 0", got)
	}
	if m.entries != 2 {
		t.Errorf("entries = %d, want 2 (load line 1 + store line 2)", m.entries)
	}
	// The store's line is resident for a later load.
	if got := m.Access(300, ld(2)); got != 0 {
		t.Errorf("load after store-entry stalled %d, want 0", got)
	}
}

func TestDepthMemBatchAccounting(t *testing.T) {
	m := newDepthMem(100, 64)
	// Three entries within the batch gap, then one isolated entry far away:
	// batches of size 3 and 1, so E[B²]/E[B] = (9+1)/(3+1) = 2.5.
	m.Access(0, ld(1))
	m.Access(batchGap/2, ld(2))
	m.Access(batchGap, ld(3))
	m.Access(10000, ld(4))
	if got := m.batchW(); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("batchW = %g, want 2.5", got)
	}
	// batchW flushes the open batch without consuming it: stable on re-read.
	if got := m.batchW(); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("second batchW = %g, want 2.5", got)
	}
	if fresh := newDepthMem(100, 64); fresh.batchW() != 1 {
		t.Errorf("batchW with no entries = %g, want 1", fresh.batchW())
	}
}

func TestMeasureResponseShape(t *testing.T) {
	mach := machine.AMDPhenomII()
	depths := machineDepths(mach)
	c := compileBench(t, "libquantum", 0.01)
	counts := CountRefs(c)
	resp := MeasureResponse(c, counts.Loads, mach.Window, depths)
	if resp.BaseCPI < 1 {
		t.Errorf("BaseCPI = %g, want >= 1 (one cycle per instruction floor)", resp.BaseCPI)
	}
	if len(resp.Extra) != len(depths) || len(resp.BatchW) != len(depths) {
		t.Fatalf("grid shapes: Extra %d, BatchW %d, want %d", len(resp.Extra), len(resp.BatchW), len(depths))
	}
	for d := range depths {
		if resp.BatchW[d] < 1 {
			t.Errorf("BatchW[%d] = %g, want >= 1", d, resp.BatchW[d])
		}
		for i, v := range resp.Extra[d] {
			if v < 0 {
				t.Errorf("Extra[%d][%d] = %g, want >= 0", d, i, v)
			}
			if i > 0 && v < resp.Extra[d][i-1]-1e-9 {
				t.Errorf("Extra[%d] not monotone in latency: %v", d, resp.Extra[d])
			}
		}
	}
	// Deeper filters see no more entries than shallow ones.
	for d := 1; d < len(depths); d++ {
		if resp.Entries[d] > resp.Entries[d-1]+1e-9 {
			t.Errorf("Entries not monotone in depth: %v", resp.Entries)
		}
	}
	// The zero-loads path synthesizes a flat response.
	flat := MeasureResponse(c, 0, mach.Window, depths)
	for d := range depths {
		if flat.BatchW[d] != 1 {
			t.Errorf("zero-loads BatchW[%d] = %g, want 1", d, flat.BatchW[d])
		}
		for i, v := range flat.Extra[d] {
			if v != 0 {
				t.Errorf("zero-loads Extra[%d][%d] = %g, want 0", d, i, v)
			}
		}
	}
}

func TestPredictEdgeCases(t *testing.T) {
	mach := machine.AMDPhenomII()
	if pred := Predict(mach, nil); len(pred.Cores) != 0 || pred.TotalBandwidthGBps != 0 {
		t.Errorf("empty core list predicted %+v, want zero value", pred)
	}
	// A core without a StatStack model must not panic: it predicts from its
	// latency response alone with zero miss ratios past L1.
	c := compileBench(t, "libquantum", 0.01)
	counts := CountRefs(c)
	core := Core{
		Name:   "nomodel",
		Counts: counts,
		Resps:  []LatencyResponse{MeasureResponse(c, counts.Loads, mach.Window, machineDepths(mach))},
	}
	pred := Predict(mach, []Core{core})
	if len(pred.Cores) != 1 {
		t.Fatalf("got %d core predictions, want 1", len(pred.Cores))
	}
	if cp := pred.Cores[0]; cp.MRLLC != 0 || cp.CPI < 1 || cp.Slowdown != 1 {
		t.Errorf("model-less prediction = %+v", cp)
	}
	// A core with no measured responses at all falls back to the zero-value
	// response without panicking.
	bare := Core{Name: "bare", Counts: counts}
	if p := Predict(mach, []Core{bare}); len(p.Cores) != 1 {
		t.Errorf("bare core predicted %d cores, want 1", len(p.Cores))
	}
}

func TestPredictSoloSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles a benchmark; skipped in -short")
	}
	mach := machine.AMDPhenomII()
	core := coreOf(t, "libquantum", 0.05)
	pred := Predict(mach, []Core{core})
	if len(pred.Cores) != 1 {
		t.Fatalf("got %d cores, want 1", len(pred.Cores))
	}
	cp := pred.Cores[0]
	if cp.OccupancyBytes != mach.LLC.Size {
		t.Errorf("solo occupancy = %d, want the whole LLC (%d)", cp.OccupancyBytes, mach.LLC.Size)
	}
	if cp.Slowdown != 1 {
		t.Errorf("solo slowdown = %g, want 1", cp.Slowdown)
	}
	if cp.CPI < 1 || cp.CPI > 100 {
		t.Errorf("implausible solo CPI %g", cp.CPI)
	}
	if cp.MRLLC > cp.MR2+1e-12 || cp.MR2 > cp.MR1+1e-12 {
		t.Errorf("miss ratios not nested: L1 %g >= L2 %g >= LLC %g expected", cp.MR1, cp.MR2, cp.MRLLC)
	}
	if pred.BusUtilization < 0 || pred.BusUtilization > maxBusUtil {
		t.Errorf("bus utilization %g outside [0, %g]", pred.BusUtilization, maxBusUtil)
	}
}

func TestPredictDeterministicFromScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles benchmarks twice; skipped in -short")
	}
	mach := machine.IntelSandyBridge()
	cores1 := []Core{coreOf(t, "libquantum", 0.05), coreOf(t, "mcf", 0.02)}
	cores2 := []Core{coreOf(t, "libquantum", 0.05), coreOf(t, "mcf", 0.02)}
	p1 := Predict(mach, cores1)
	p2 := Predict(mach, cores2)
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("predictions from independently rebuilt cores differ:\n%+v\nvs\n%+v", p1, p2)
	}
	// Contention must slow both cores down relative to solo.
	for _, cp := range p1.Cores {
		if cp.Slowdown < 1 {
			t.Errorf("%s: mix slowdown %g < 1", cp.Name, cp.Slowdown)
		}
	}
}
