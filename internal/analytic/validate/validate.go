// Package validate is the differential harness between the analytic fast
// tier (internal/analytic) and the full timing simulator: it pairs each
// analytic prediction with the corresponding simulator measurement, turns
// the pair into per-metric error rows, and aggregates the mean/max errors
// the golden tests pin. The harness holds no engine machinery itself — the
// analytic-validate experiment driver feeds it — so the same rows back both
// the rendered comparison table and the CI error bounds.
package validate

import (
	"math"

	"prefetchlab/internal/analytic"
	"prefetchlab/internal/cpu"
	"prefetchlab/internal/machine"
)

// bwFloor keeps relative bandwidth errors meaningful for near-idle cores:
// errors are relative to at least this many GB/s.
const bwFloor = 0.25

// SoloRow compares one benchmark's solo steady state: analytic prediction
// against a baseline timing-simulator run.
type SoloRow struct {
	Bench string
	// CPI: predicted vs simulated cycles per instruction; CPIErr is the
	// relative error |pred−sim|/sim.
	PredCPI, SimCPI, CPIErr float64
	// LLC miss ratio per demand reference; MRErr is the absolute error
	// (miss ratios live in [0,1], where relative error explodes near 0).
	PredMR, SimMR, MRErr float64
	// DRAM bandwidth in GB/s; BWErr is relative with a floor.
	PredBW, SimBW, BWErr float64
}

// SoloRowOf builds a solo comparison row from an analytic solo prediction
// and the benchmark's baseline solo simulation on the same machine.
func SoloRowOf(bench string, pred analytic.Prediction, sim cpu.Result, mach machine.Machine) SoloRow {
	row := SoloRow{Bench: bench}
	if len(pred.Cores) > 0 {
		row.PredCPI = pred.Cores[0].CPI
		row.PredMR = pred.Cores[0].MRLLC
		row.PredBW = pred.TotalBandwidthGBps
	}
	if sim.Instructions > 0 {
		row.SimCPI = float64(sim.Cycles) / float64(sim.Instructions)
	}
	if refs := sim.Stats.Loads + sim.Stats.Stores; refs > 0 {
		row.SimMR = float64(sim.Stats.LLCMisses) / float64(refs)
	}
	if sim.Cycles > 0 {
		row.SimBW = mach.GBps(float64(sim.Stats.TotalTraffic()) / float64(sim.Cycles))
	}
	row.CPIErr = relErr(row.PredCPI, row.SimCPI)
	row.MRErr = math.Abs(row.PredMR - row.SimMR)
	row.BWErr = relErrFloor(row.PredBW, row.SimBW, bwFloor)
	return row
}

// MixRow compares one co-run mix: per-core analytic slowdowns against the
// simulator's restart-methodology slowdowns, and aggregate DRAM bandwidth.
type MixRow struct {
	Names []string
	// PredSlowdown and SimSlowdown align with Names. SlowdownErr is the
	// mean absolute slowdown error over the mix's cores.
	PredSlowdown []float64
	SimSlowdown  []float64
	SlowdownErr  float64
	// Aggregate DRAM bandwidth, GB/s.
	PredBW, SimBW, BWErr float64
}

// MixRowOf builds a mix comparison row. apps are the baseline mix results
// (first-completion cycles under contention) and soloCycles the matching
// solo baseline cycle counts, index-aligned with pred.Cores.
func MixRowOf(names []string, pred analytic.Prediction, apps []cpu.Result, soloCycles []int64, simBW float64) MixRow {
	row := MixRow{Names: names, PredBW: pred.TotalBandwidthGBps, SimBW: simBW}
	var errSum float64
	n := len(pred.Cores)
	if len(apps) < n {
		n = len(apps)
	}
	if len(soloCycles) < n {
		n = len(soloCycles)
	}
	for i := 0; i < n; i++ {
		ps := pred.Cores[i].Slowdown
		ss := 0.0
		if soloCycles[i] > 0 {
			ss = float64(apps[i].Cycles) / float64(soloCycles[i])
		}
		row.PredSlowdown = append(row.PredSlowdown, ps)
		row.SimSlowdown = append(row.SimSlowdown, ss)
		errSum += math.Abs(ps - ss)
	}
	if n > 0 {
		row.SlowdownErr = errSum / float64(n)
	}
	row.BWErr = relErrFloor(row.PredBW, row.SimBW, bwFloor)
	return row
}

// Report aggregates one machine's differential comparison.
type Report struct {
	Machine string
	Solo    []SoloRow
	Mixes   []MixRow
}

// MeanCPIErr returns the mean relative solo-CPI error.
func (r *Report) MeanCPIErr() float64 {
	var s float64
	for _, row := range r.Solo {
		s += row.CPIErr
	}
	return mean(s, len(r.Solo))
}

// MaxCPIErr returns the worst relative solo-CPI error.
func (r *Report) MaxCPIErr() float64 {
	var m float64
	for _, row := range r.Solo {
		m = math.Max(m, row.CPIErr)
	}
	return m
}

// MeanMRErr returns the mean absolute LLC-miss-ratio error.
func (r *Report) MeanMRErr() float64 {
	var s float64
	for _, row := range r.Solo {
		s += row.MRErr
	}
	return mean(s, len(r.Solo))
}

// MeanBWErr returns the mean relative solo-bandwidth error.
func (r *Report) MeanBWErr() float64 {
	var s float64
	for _, row := range r.Solo {
		s += row.BWErr
	}
	return mean(s, len(r.Solo))
}

// MeanSlowdownErr returns the mean absolute per-core slowdown error across
// every mix (the headline number the docs and golden tests bound).
func (r *Report) MeanSlowdownErr() float64 {
	var s float64
	n := 0
	for _, row := range r.Mixes {
		for i := range row.PredSlowdown {
			s += math.Abs(row.PredSlowdown[i] - row.SimSlowdown[i])
			n++
		}
	}
	return mean(s, n)
}

// MaxSlowdownErr returns the worst per-core slowdown error across mixes.
func (r *Report) MaxSlowdownErr() float64 {
	var m float64
	for _, row := range r.Mixes {
		for i := range row.PredSlowdown {
			m = math.Max(m, math.Abs(row.PredSlowdown[i]-row.SimSlowdown[i]))
		}
	}
	return m
}

// mean divides a sum by a count, returning 0 for an empty set.
func mean(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// relErr is |pred−sim|/sim, or 0 when sim is 0.
func relErr(pred, sim float64) float64 {
	if sim == 0 {
		return 0
	}
	return math.Abs(pred-sim) / sim
}

// relErrFloor is |pred−sim| relative to max(sim, floor).
func relErrFloor(pred, sim, floor float64) float64 {
	d := sim
	if d < floor {
		d = floor
	}
	return math.Abs(pred-sim) / d
}
