package validate

import (
	"math"
	"testing"

	"prefetchlab/internal/analytic"
	"prefetchlab/internal/cpu"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/memsys"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSoloRowOf(t *testing.T) {
	mach := machine.AMDPhenomII()
	pred := analytic.Prediction{
		Cores:              []analytic.CorePrediction{{CPI: 2.2, MRLLC: 0.5}},
		TotalBandwidthGBps: 1.0,
	}
	sim := cpu.Result{
		Cycles:       2000,
		Instructions: 1000,
		Stats: memsys.CoreStats{
			Loads: 300, Stores: 100, LLCMisses: 160,
			DemandFetchBytes: 100000,
		},
	}
	row := SoloRowOf("b", pred, sim, mach)
	if !almost(row.SimCPI, 2.0) || !almost(row.CPIErr, 0.1) {
		t.Errorf("CPI: sim %g err %g, want 2.0 and 0.1", row.SimCPI, row.CPIErr)
	}
	if !almost(row.SimMR, 0.4) || !almost(row.MRErr, 0.1) {
		t.Errorf("MR: sim %g err %g, want 0.4 and 0.1", row.SimMR, row.MRErr)
	}
	if row.SimBW <= 0 || row.BWErr < 0 {
		t.Errorf("BW: sim %g err %g", row.SimBW, row.BWErr)
	}
	// Zero-valued inputs must not divide by zero.
	empty := SoloRowOf("z", analytic.Prediction{}, cpu.Result{}, mach)
	if empty.CPIErr != 0 || empty.MRErr != 0 || empty.BWErr != 0 {
		t.Errorf("empty row has nonzero errors: %+v", empty)
	}
}

func TestMixRowOfAndAggregates(t *testing.T) {
	pred := analytic.Prediction{
		Cores: []analytic.CorePrediction{
			{Slowdown: 2.0}, {Slowdown: 3.0},
		},
		TotalBandwidthGBps: 4.0,
	}
	apps := []cpu.Result{{Cycles: 2200}, {Cycles: 2500}}
	solo := []int64{1000, 1000}
	row := MixRowOf([]string{"a", "b"}, pred, apps, solo, 4.0)
	// Sim slowdowns 2.2 and 2.5 → per-core errors 0.2 and 0.5.
	if !almost(row.SlowdownErr, 0.35) {
		t.Errorf("SlowdownErr = %g, want 0.35", row.SlowdownErr)
	}
	if !almost(row.BWErr, 0) {
		t.Errorf("BWErr = %g, want 0", row.BWErr)
	}

	rep := &Report{Solo: []SoloRow{{CPIErr: 0.1}, {CPIErr: 0.3}}, Mixes: []MixRow{row}}
	if !almost(rep.MeanCPIErr(), 0.2) || !almost(rep.MaxCPIErr(), 0.3) {
		t.Errorf("CPI aggregates = %g/%g, want 0.2/0.3", rep.MeanCPIErr(), rep.MaxCPIErr())
	}
	if !almost(rep.MeanSlowdownErr(), 0.35) || !almost(rep.MaxSlowdownErr(), 0.5) {
		t.Errorf("slowdown aggregates = %g/%g, want 0.35/0.5", rep.MeanSlowdownErr(), rep.MaxSlowdownErr())
	}

	// Length mismatches truncate to the shortest, never panic.
	short := MixRowOf([]string{"a", "b"}, pred, apps[:1], solo, 4.0)
	if len(short.PredSlowdown) != 1 {
		t.Errorf("truncated row has %d entries, want 1", len(short.PredSlowdown))
	}
	if e := (&Report{}).MeanSlowdownErr(); e != 0 {
		t.Errorf("empty report error = %g, want 0", e)
	}
}
