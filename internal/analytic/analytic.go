// Package analytic is the MRC-only fast prediction tier: it composes the
// per-application StatStack models (internal/statstack) of a co-running mix
// into a shared-LLC occupancy/miss-ratio fixed point and predicts per-core
// slowdown, DRAM bandwidth demand and prefetchable traffic without running
// the timing simulator (internal/memsys, internal/pipeline).
//
// The composition follows the shared-cache reuse-distance models of Barai
// et al. (arXiv:1907.12666) and PPT-Multicore (arXiv:2104.05102): in steady
// state each core's share of a shared LRU-like cache is proportional to the
// rate at which it inserts lines, which for an inclusive-enough hierarchy is
// its L2 miss rate. That share decides the core's effective LLC size, the
// effective size decides its LLC miss ratio (read off its solo MRC), the
// miss ratio decides its DRAM traffic and queueing delay, and the delay
// decides its CPI — which feeds back into the insertion rate. The fixed
// point is iterated a constant number of times with damping, so predictions
// are deterministic pure float arithmetic: the same inputs produce the same
// bytes on any worker count.
//
// Latency sensitivity is not modeled with closed-form MLP constants —
// whether a load's latency is hidden depends on the program's dependence
// structure (pointer chases serialize, strided streams overlap up to the
// reorder window). Instead, profiling measures each program's latency
// response directly with a handful of VM passes against synthetic memory
// systems, sampling "extra cycles" as a function of latency:
//
//   - a uniform response (every load costs λ) covers the per-load cache hit
//     latency, and
//   - a depth response covers misses: in the simulator every non-L1-hit
//     event fetches a 64 B line into L1, so miss costs — including the
//     late-hit waits of trailing accesses to an in-flight line — attach per
//     line fetch, not per reference, and which fetches a cache of a given
//     size turns into misses is decided by stack distance. Each pass runs
//     the program against an LRU recency filter of one depth D: touching a
//     line whose stack distance exceeds D costs λ, everything else is free
//     (or waits out an in-flight line) and refreshes the line's recency.
//     The charged events are then exactly the far-reuse population a D-line
//     LRU cache would miss — the same population StatStack's MRC counts —
//     with its natural composition and spacing: a serialized pointer chase
//     with short reuse never gets charged in a deep pass, just as it never
//     misses a large cache.
//
// The fixed point prices each hierarchy level by telescoping depth passes:
// extra(L1 depth, λ) − extra(L2 depth, λ) is the cost of the population
// that misses L1 but hits L2, and the DRAM-level term interpolates the
// depth axis at the core's current LLC share, which is how shrinking
// occupancy under a co-running mix turns into serialized far-reuse misses.
// The passes use the VM's real register-dependence and reorder-window logic
// (at each machine's window size) but no cache model; they are cached with
// the profile.
//
// Everything at prediction time costs microseconds per mix against seconds
// for the timing simulator; the differential validation harness
// (internal/analytic/validate and the analytic-validate experiment driver)
// quantifies what that buys and what it costs in accuracy.
package analytic

import (
	"math"
	"sort"

	"prefetchlab/internal/isa"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/ref"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/statstack"
)

// Model constants. These are calibrated against the timing simulator by the
// analytic-validate driver; the differential golden tests pin the resulting
// error bounds, so retuning a constant that degrades agreement fails CI.
const (
	// Iterations is the fixed-point iteration count. A constant count (not
	// a convergence test) keeps the arithmetic — and therefore the output
	// bytes — independent of float rounding details.
	Iterations = 48
	// maxBusUtil caps modeled DRAM utilization so the M/D/1-style queueing
	// term stays finite under overload.
	maxBusUtil = 0.97
	// batchSyncCap caps the batch-synchronization intensity util·B in the
	// DRAM queueing amplifier 1/(1 − util·B). The shared FIFO channel
	// synchronizes the cores' stall rounds, so per-core miss batches pile
	// into common busy periods; util·B is the fraction of time the channel
	// spends in such pile-ups, and as it approaches 1 the busy periods
	// chain into each other. The cap keeps the amplifier finite,
	// matching the deepest sustained backlogs the simulator exhibits.
	batchSyncCap = 0.9
	// batchGap is the maximum spacing in pass cycles between line entries of
	// one batch. It is the DRAM channel's service-time scale: entries booked
	// closer together than a line transfer's channel occupancy (~14 cycles)
	// pile onto the channel simultaneously, entries further apart let it
	// drain. Regularly spaced solo streams (one miss per loop iteration,
	// tens of cycles apart) stay at B≈1 while dependence-free miss clusters
	// inside one reorder window (parallel gathers, window refills after a
	// chase stall) are counted at their true width.
	batchGap = 16
	// dominantStrideFrac is the per-PC sample fraction a single stride must
	// reach for the PC to count as regular (matching the analyses' notion
	// of a stable stride).
	dominantStrideFrac = 0.6
)

// uniformLats is the latency grid of the uniform (per-load) response: it
// only has to cover the L1 hit latencies (sim stall L1Lat−1, 2–3 cycles).
var uniformLats = []int64{2, 4}

// shallowLats and deepLats are the latency grids of the depth passes.
// Shallow depths (L1, L2) only price the L2/LLC hit excesses (8–37
// cycles); deep (LLC-scale) depths also price DRAM latency plus queueing
// delay up to the modeled utilization cap (~260–490 cycles). Log-spaced:
// the response is near-linear between neighboring powers, and beyond the
// last point it is extrapolated with the final segment's slope (past the
// reorder window every program's response is linear in the latency).
var (
	shallowLats = []int64{8, 32}
	deepLats    = []int64{32, 256, 1024}
)

// Counts summarizes one functional (timing-free) execution of a program:
// the instruction-mix inputs of the analytic CPI model.
type Counts struct {
	Instructions int64
	Loads        int64
	Stores       int64
	Prefetches   int64
}

// Refs returns the demand reference count.
func (c Counts) Refs() int64 { return c.Loads + c.Stores }

// CountRefs executes the program functionally (no timing) and tallies its
// instruction mix. It costs one trace pass — the same work as the sampling
// pass — and is cached per profile by callers.
func CountRefs(c *isa.Compiled) Counts {
	vm := isa.NewVM(c)
	var out Counts
	for {
		ev := vm.NextEvent()
		if ev.Done {
			out.Instructions = vm.Instructions()
			return out
		}
		switch ev.Ref.Kind {
		case ref.Load:
			out.Loads++
		case ref.Store:
			out.Stores++
		default:
			out.Prefetches++
		}
		vm.Complete(0)
	}
}

// LatencyResponse is a program's measured stall response to memory latency,
// sampled on two axes. The uniform curve answers "how many extra cycles per
// load when every load costs λ" — the cost model of cache hits, which charge
// per reference. The line curve answers "how many extra cycles per line
// fetch when the first touch of each line costs λ and trailing touches wait
// out the line's arrival" — the cost model of misses, which charge per line
// brought into L1 (including the late-hit waits of the line's remaining
// accesses). Both curves encode the dependence structure the VM's timing
// model exposes: pointer chases approach slope 1 (every latency cycle is a
// stalled cycle), streams with unread values stay near 0 until the reorder
// window saturates.
type LatencyResponse struct {
	// Window is the reorder-window size (instructions) the passes ran at,
	// matching one evaluation machine.
	Window int64
	// BaseCPI is cycles per instruction with zero-latency loads: the
	// program's compute-bound floor.
	BaseCPI float64
	// UniformLats is the sampled uniform-latency grid, ascending;
	// Uniform[i] is the mean extra cycles per load at latency UniformLats[i]
	// relative to the zero-latency run.
	UniformLats []int64
	Uniform     []float64
	// Depths is the sampled LRU-filter depth grid in cache lines,
	// ascending (the machine's L1 and L2 line counts plus LLC-scale
	// points). DepthLats[d] is depth d's latency grid, and Extra[d][l] the
	// extra cycles per instruction when line entries past depth Depths[d]
	// cost DepthLats[d][l]. Entries[d] is the entry rate (events per
	// instruction) at that depth, kept for diagnostics. BatchW[d] is the
	// transfer-weighted mean batch size at that depth: how many line
	// entries the program books back-to-back before a charged stall
	// separates them. It measures the dependence-limited burstiness of the
	// miss stream a cache of that size would see (a regular solo stream is
	// ≈1, a reorder window full of independent misses is the window's MLP)
	// and drives the DRAM queueing model.
	Depths    []int64
	DepthLats [][]int64
	Extra     [][]float64
	Entries   []float64
	BatchW    []float64
}

// constLat is the synthetic memory system of the uniform response passes:
// every load costs the same latency, stores and prefetches are free
// (matching the VM contract — prefetches must not stall).
type constLat int64

// Access implements isa.MemSystem.
func (l constLat) Access(now int64, r ref.Ref) int64 {
	if r.Kind == ref.Load {
		return int64(l)
	}
	return 0
}

// depthMem is the synthetic memory system of the depth passes: a
// fully-associative LRU filter of depth cache lines. A load or store whose
// 64 B line is not among the depth most recently used lines (stack distance
// > depth — the population StatStack's MRC counts at that size) is a line
// entry and starts a fetch completing at now+lat; an entering load stalls
// the full latency. Any touch refreshes the line's recency, so
// frequently-reused lines stay resident the way they stay in an LRU cache.
// Later loads to a resident line wait out whatever is left in flight (the
// simulator's late hits); stores never stall (write buffer). Re-sweeping a
// working set larger than the filter re-enters its lines the way capacity
// misses re-fetch them, while short-reuse accesses are never charged, just
// as they never miss a cache of that size.
type depthMem struct {
	lat     int64
	cap     int32
	ready   map[uint64]int64
	idx     map[uint64]int32 // line → node index
	nodes   []lruNode
	mru     int32
	lru     int32
	entries int64
	// Batch bookkeeping: entries booked within gap cycles of the previous
	// entry belong to one batch — the program's dependence-limited burst of
	// simultaneously outstanding misses (a charged stall separates batches
	// by at least lat ≫ gap). The first and second moments of the batch
	// sizes feed the DRAM queueing model.
	gap       int64
	lastEntry int64
	curBatch  int64
	batchSum  int64
	batchSum2 int64
}

// lruNode is one resident line in the move-to-front list.
type lruNode struct {
	line       uint64
	prev, next int32 // toward MRU / toward LRU; -1 at the ends
}

func newDepthMem(lat, depth int64) *depthMem {
	if depth < 1 {
		depth = 1
	}
	return &depthMem{
		lat:       lat,
		cap:       int32(depth),
		ready:     make(map[uint64]int64),
		idx:       make(map[uint64]int32, depth),
		nodes:     make([]lruNode, 0, depth),
		mru:       -1,
		lru:       -1,
		gap:       batchGap,
		lastEntry: -1,
	}
}

// batchW returns the transfer-weighted mean batch size E[B²]/E[B]: the
// expected size of the batch a randomly chosen line entry belongs to
// (≥ 1; 1 when entries are isolated or absent).
func (m *depthMem) batchW() float64 {
	sum, sum2 := m.batchSum, m.batchSum2
	if m.curBatch > 0 { // flush the trailing open batch
		sum += m.curBatch
		sum2 += m.curBatch * m.curBatch
	}
	if sum < 1 {
		return 1
	}
	return float64(sum2) / float64(sum)
}

// unlink removes node i from the recency list.
func (m *depthMem) unlink(i int32) {
	n := &m.nodes[i]
	if n.prev >= 0 {
		m.nodes[n.prev].next = n.next
	} else {
		m.mru = n.next
	}
	if n.next >= 0 {
		m.nodes[n.next].prev = n.prev
	} else {
		m.lru = n.prev
	}
}

// pushFront makes node i the most recently used.
func (m *depthMem) pushFront(i int32) {
	n := &m.nodes[i]
	n.prev, n.next = -1, m.mru
	if m.mru >= 0 {
		m.nodes[m.mru].prev = i
	}
	m.mru = i
	if m.lru < 0 {
		m.lru = i
	}
}

// Access implements isa.MemSystem.
func (m *depthMem) Access(now int64, r ref.Ref) int64 {
	switch r.Kind {
	case ref.Load, ref.Store:
	default:
		return 0
	}
	line := r.Line()
	if i, ok := m.idx[line]; ok {
		if i != m.mru {
			m.unlink(i)
			m.pushFront(i)
		}
		if r.Kind == ref.Load {
			if wait := m.ready[line] - now; wait > 0 {
				return wait
			}
		}
		return 0
	}
	m.entries++
	if m.lastEntry >= 0 && now-m.lastEntry <= m.gap {
		m.curBatch++
	} else {
		if m.curBatch > 0 {
			m.batchSum += m.curBatch
			m.batchSum2 += m.curBatch * m.curBatch
		}
		m.curBatch = 1
	}
	m.lastEntry = now
	var i int32
	if int32(len(m.nodes)) < m.cap {
		i = int32(len(m.nodes))
		m.nodes = append(m.nodes, lruNode{line: line})
	} else {
		i = m.lru
		m.unlink(i)
		delete(m.idx, m.nodes[i].line)
		m.nodes[i].line = line
	}
	m.pushFront(i)
	m.idx[line] = i
	m.ready[line] = now + m.lat
	if r.Kind == ref.Load {
		return m.lat
	}
	return 0
}

// runWindow executes the program against mem with the given reorder-window
// size (isa.Run at a configurable window).
func runWindow(c *isa.Compiled, mem isa.MemSystem, window int64) (int64, *isa.VM) {
	vm := isa.NewVM(c)
	vm.SetWindow(window)
	for {
		ev := vm.NextEvent()
		if ev.Done {
			return vm.Cycles(), vm
		}
		vm.Complete(mem.Access(vm.Cycles(), ev.Ref))
	}
}

// MeasureResponse runs the latency-response passes at one machine's window
// and depth grid: a zero-latency run for the compute floor, one uniform
// run per uniformLats point, and one depth run per (depth, latency) grid
// cell. loads is the program's load count (from CountRefs); it normalizes
// the uniform curve. depths must be ascending; shallow depths (below the
// last two, the LLC-scale points) use the shallow latency grid.
func MeasureResponse(c *isa.Compiled, loads, window int64, depths []int64) LatencyResponse {
	base, vm := runWindow(c, constLat(0), window)
	instr := vm.Instructions()
	if instr < 1 {
		instr = 1
	}
	resp := LatencyResponse{
		Window:      window,
		BaseCPI:     float64(base) / float64(instr),
		UniformLats: uniformLats,
		Uniform:     make([]float64, len(uniformLats)),
		Depths:      depths,
		DepthLats:   make([][]int64, len(depths)),
		Extra:       make([][]float64, len(depths)),
		Entries:     make([]float64, len(depths)),
		BatchW:      make([]float64, len(depths)),
	}
	if loads < 1 {
		for d := range depths {
			resp.DepthLats[d] = shallowLats
			resp.Extra[d] = make([]float64, len(shallowLats))
			resp.BatchW[d] = 1
		}
		return resp
	}
	for i, lat := range uniformLats {
		cycles, _ := runWindow(c, constLat(lat), window)
		resp.Uniform[i] = perEvent(cycles, base, loads)
	}
	for d, depth := range depths {
		lats := shallowLats
		if deepDepth(depths, d) {
			lats = deepLats
		}
		resp.DepthLats[d] = lats
		resp.Extra[d] = make([]float64, len(lats))
		for i, lat := range lats {
			mem := newDepthMem(lat, depth)
			cycles, _ := runWindow(c, mem, window)
			resp.Entries[d] = float64(mem.entries) / float64(instr)
			resp.BatchW[d] = mem.batchW()
			resp.Extra[d][i] = perEvent(cycles, base, instr)
		}
	}
	return resp
}

// deepDepth reports whether depth index d is an LLC-scale point (priced on
// the deep latency grid): any depth past the two private-cache points.
func deepDepth(depths []int64, d int) bool { return d >= 2 }

// perEvent converts a pass's extra cycles over the zero-latency baseline
// into mean extra cycles per charged event, clamped at zero.
func perEvent(cycles, base, events int64) float64 {
	if events < 1 {
		return 0
	}
	extra := cycles - base
	if extra < 0 {
		extra = 0
	}
	return float64(extra) / float64(events)
}

// UniformAt interpolates the uniform (per-load) response at an arbitrary
// latency.
func (r LatencyResponse) UniformAt(lat float64) float64 {
	return interpResponse(r.UniformLats, r.Uniform, lat)
}

// ExtraAt interpolates the depth response — extra cycles per instruction
// when line entries past depth (in cache lines) cost lat — piecewise
// linearly in latency within each measured depth and linearly in log depth
// between depths, clamped at the depth-grid ends.
func (r LatencyResponse) ExtraAt(depth, lat float64) float64 {
	if len(r.Depths) == 0 {
		return 0
	}
	return interpDepth(r.Depths, depth, func(d int) float64 {
		return interpResponse(r.DepthLats[d], r.Extra[d], lat)
	})
}

// BatchWAt interpolates the transfer-weighted mean batch size at an
// arbitrary depth (linearly in log depth, clamped at the grid ends).
// Returns 1 — isolated arrivals — when the response carries no batch data.
func (r LatencyResponse) BatchWAt(depth float64) float64 {
	if len(r.BatchW) != len(r.Depths) || len(r.Depths) == 0 {
		return 1
	}
	w := interpDepth(r.Depths, depth, func(d int) float64 { return r.BatchW[d] })
	if w < 1 {
		return 1
	}
	return w
}

// interpDepth interpolates at(d) linearly in log depth over an ascending
// depth grid, clamping at the ends.
func interpDepth(depths []int64, depth float64, at func(d int) float64) float64 {
	nd := len(depths)
	if depth <= float64(depths[0]) || nd == 1 {
		return at(0)
	}
	if depth >= float64(depths[nd-1]) {
		return at(nd - 1)
	}
	x := math.Log(depth)
	for d := 1; d < nd; d++ {
		hi := float64(depths[d])
		if depth <= hi {
			lo := float64(depths[d-1])
			t := (x - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
			return at(d-1) + t*(at(d)-at(d-1))
		}
	}
	return at(nd - 1)
}

// interpResponse interpolates a response curve: linear through the origin
// below the first grid point, piecewise-linear between points, and linear
// extrapolation with the last segment's slope above the grid (past the
// reorder window every program's response is linear in the latency).
func interpResponse(lats []int64, vals []float64, lat float64) float64 {
	if len(lats) == 0 || lat <= 0 {
		return 0
	}
	if lat <= float64(lats[0]) {
		return vals[0] * lat / float64(lats[0])
	}
	n := len(lats)
	if lat >= float64(lats[n-1]) {
		if n == 1 {
			return vals[0] * lat / float64(lats[0])
		}
		slope := (vals[n-1] - vals[n-2]) / float64(lats[n-1]-lats[n-2])
		s := vals[n-1] + slope*(lat-float64(lats[n-1]))
		if s < 0 {
			return 0
		}
		return s
	}
	i := sort.Search(n, func(i int) bool { return float64(lats[i]) >= lat })
	lo, hi := float64(lats[i-1]), float64(lats[i])
	t := (lat - lo) / (hi - lo)
	return vals[i-1] + t*(vals[i]-vals[i-1])
}

// Core is one application's analytic inputs: its fitted StatStack model,
// its instruction mix, its latency responses (one per evaluation-machine
// core geometry), and the fraction of its sampled memory work with a
// stable stride (the prefetchable part).
type Core struct {
	Name        string
	Model       *statstack.Model
	Counts      Counts
	Resps       []LatencyResponse
	StridedFrac float64
}

// NewCore assembles a Core from a profile's parts, running the counting and
// latency-response passes on the compiled program — one response per
// distinct (reorder window, L1 lines) geometry among the evaluation
// machines. StridedFrac is the sample-weighted fraction of instructions
// whose dominant stride is regular and nonzero — the traffic a stride
// prefetcher could cover.
func NewCore(name string, m *statstack.Model, s *sampler.Samples, c *isa.Compiled) Core {
	counts := CountRefs(c)
	core := Core{
		Name:        name,
		Model:       m,
		Counts:      counts,
		StridedFrac: stridedFraction(s),
	}
	for _, mach := range machine.Both() {
		seen := false
		for _, r := range core.Resps {
			if r.Window == mach.Window {
				seen = true
				break
			}
		}
		if !seen {
			core.Resps = append(core.Resps, MeasureResponse(c, counts.Loads, mach.Window, machineDepths(mach)))
		}
	}
	return core
}

// machineDepths is a machine's depth grid in cache lines: the private L1
// and L2 sizes plus three LLC-scale points, so the fixed point can
// interpolate the DRAM-level cost at any LLC share down to 1/8 of the
// cache.
func machineDepths(mach machine.Machine) []int64 {
	llc := mach.LLC.Size / ref.LineSize
	return []int64{
		mach.L1.Size / ref.LineSize,
		mach.L2.Size / ref.LineSize,
		llc / 8,
		llc / 2,
		llc,
	}
}

// respFor picks the latency response matching a machine's reorder window,
// falling back to the nearest window if the exact one was not measured.
func (c Core) respFor(mach machine.Machine) LatencyResponse {
	if len(c.Resps) == 0 {
		return LatencyResponse{}
	}
	best, bestDist := 0, int64(-1)
	for i, r := range c.Resps {
		if r.Window == mach.Window {
			return r
		}
		d := r.Window - mach.Window
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return c.Resps[best]
}

// stridedFraction computes the sample-weighted regular-stride fraction.
// Per-PC groups are visited in sorted PC order so the float accumulation is
// identical on every run.
func stridedFraction(s *sampler.Samples) float64 {
	if s == nil || len(s.Strides) == 0 {
		return 0
	}
	byPC := s.StridesByPC()
	pcs := make([]ref.PC, 0, len(byPC))
	for pc := range byPC {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	var total, strided float64
	for _, pc := range pcs {
		samples := byPC[pc]
		counts := make(map[int64]int, len(samples))
		for _, st := range samples {
			counts[st.Stride]++
		}
		best, bestN := int64(0), 0
		for _, st := range samples { // visit in sample order, not map order
			if n := counts[st.Stride]; n > bestN || (n == bestN && st.Stride < best) {
				best, bestN = st.Stride, n
			}
		}
		total += float64(len(samples))
		if best != 0 && float64(bestN) >= dominantStrideFrac*float64(len(samples)) {
			strided += float64(len(samples))
		}
	}
	if total == 0 {
		return 0
	}
	return strided / total
}

// CorePrediction is one core's analytic steady state.
type CorePrediction struct {
	Name string
	// CPI is the predicted cycles per instruction under the mix.
	CPI float64
	// Cycles is CPI × instructions — the predicted run length.
	Cycles int64
	// MR1, MR2, MRLLC are the modeled miss ratios (per demand reference) at
	// the private L1, the private L2, and the core's LLC share.
	MR1, MR2, MRLLC float64
	// OccupancyBytes is the core's fixed-point share of the shared LLC.
	OccupancyBytes int64
	// BandwidthGBps is the core's DRAM demand (fetches + writebacks).
	BandwidthGBps float64
	// PrefetchGBps is the strided share of the demand fetch traffic — the
	// bandwidth a stride prefetcher would need to cover this core's misses.
	PrefetchGBps float64
	// Slowdown is CPI divided by the core's solo CPI on the same machine
	// (1.0 in a solo prediction).
	Slowdown float64
}

// Prediction is the analytic steady state of one machine running a set of
// cores.
type Prediction struct {
	Machine string
	Cores   []CorePrediction
	// TotalBandwidthGBps is the aggregate DRAM demand.
	TotalBandwidthGBps float64
	// BusUtilization is the modeled DRAM channel utilization in [0, maxBusUtil].
	BusUtilization float64
}

// coreState is the mutable per-core fixed-point state.
type coreState struct {
	model     *statstack.Model
	resp      LatencyResponse
	instr     float64
	refsPerIn float64
	wbFrac    float64
	mr1, mr2  float64
	// hitCPI is the CPI with every load hitting L1: the compute floor plus
	// the program's uniform response at the L1 hit stall (L1Lat−1, the
	// latency the simulator charges a hitting load at first use).
	hitCPI float64

	cpi    float64
	occ    float64
	mrLLC  float64
	bwCore float64 // bytes per cycle, fetches + writebacks
}

// Predict composes the cores' MRCs into the shared-LLC fixed point on mach
// and returns the steady-state prediction. A single core receives the whole
// LLC (the solo prediction); Slowdown is filled relative to a per-core solo
// prediction, so solo cores report 1.0.
func Predict(mach machine.Machine, cores []Core) Prediction {
	out := Prediction{Machine: mach.Name}
	if len(cores) == 0 {
		return out
	}
	states := make([]coreState, len(cores))
	for i, c := range cores {
		states[i] = newCoreState(mach, c, int64(len(cores)))
	}
	util := iterate(mach, states)
	out.BusUtilization = util
	for i, c := range cores {
		st := &states[i]
		cp := CorePrediction{
			Name:           c.Name,
			CPI:            st.cpi,
			Cycles:         int64(st.cpi * st.instr),
			MR1:            st.mr1,
			MR2:            st.mr2,
			MRLLC:          st.mrLLC,
			OccupancyBytes: int64(st.occ),
			BandwidthGBps:  mach.GBps(st.bwCore),
			Slowdown:       1,
		}
		// Demand fetch bytes/cycle (no writebacks) scaled by the strided
		// fraction: the traffic a stride prefetcher would have to move.
		fetch := st.refsPerIn / st.cpi * st.mrLLC * ref.LineSize
		cp.PrefetchGBps = mach.GBps(fetch * c.StridedFrac)
		out.TotalBandwidthGBps += cp.BandwidthGBps
		out.Cores = append(out.Cores, cp)
	}
	if len(cores) > 1 {
		for i, c := range cores {
			solo := Predict(mach, []Core{c})
			if soloCPI := solo.Cores[0].CPI; soloCPI > 0 {
				out.Cores[i].Slowdown = out.Cores[i].CPI / soloCPI
			}
		}
	}
	return out
}

// newCoreState precomputes one core's invariant inputs and seeds the fixed
// point with an even LLC split and the all-hits CPI floor.
func newCoreState(mach machine.Machine, c Core, n int64) coreState {
	st := coreState{
		model: c.Model,
		resp:  c.respFor(mach),
		instr: float64(c.Counts.Instructions),
		occ:   float64(mach.LLC.Size) / float64(n),
	}
	if st.instr < 1 {
		st.instr = 1
	}
	var loadsPerIn float64
	if refs := c.Counts.Refs(); refs > 0 {
		st.refsPerIn = float64(refs) / st.instr
		loadsPerIn = float64(c.Counts.Loads) / st.instr
		st.wbFrac = float64(c.Counts.Stores) / float64(refs)
	}
	base := st.resp.BaseCPI
	if base < 1 {
		base = 1
	}
	st.hitCPI = base + loadsPerIn*st.resp.UniformAt(float64(mach.L1Lat-1))
	st.cpi = st.hitCPI
	if c.Model != nil {
		st.mr1 = c.Model.MissRatio(mach.L1.Size)
		st.mr2 = math.Min(st.mr1, c.Model.MissRatio(mach.L2.Size))
		st.mrLLC = math.Min(st.mr2, c.Model.MissRatio(int64(st.occ)))
	}
	return st
}

// iterate runs the occupancy/bandwidth/CPI fixed point for a constant
// iteration count and returns the final bus utilization. Each pass:
// insertion rates → LLC shares → LLC miss ratios → DRAM utilization and
// queueing delay → per-core CPI (damped).
func iterate(mach machine.Machine, states []coreState) float64 {
	llcSize := float64(mach.LLC.Size)
	// Channel occupancy of one line transfer, rounded like dram.Transfer.
	// ServiceLat is pipelined latency layered on top — it delays the
	// requester but does not occupy the channel, so queueing is governed by
	// the transfer time alone.
	occCycles := math.Floor(float64(ref.LineSize)/mach.DRAM.BytesPerCycle + 0.5)
	if occCycles < 1 {
		occCycles = 1
	}
	util := 0.0
	for it := 0; it < Iterations; it++ {
		// LLC shares from L2-miss insertion rates (Barai et al.).
		var totalIns float64
		for i := range states {
			st := &states[i]
			totalIns += st.refsPerIn / st.cpi * st.mr2
		}
		for i := range states {
			st := &states[i]
			if totalIns > 0 {
				st.occ = llcSize * (st.refsPerIn / st.cpi * st.mr2) / totalIns
			} else {
				st.occ = llcSize / float64(len(states))
			}
			if st.occ < ref.LineSize {
				st.occ = ref.LineSize
			}
			st.mrLLC = st.mr2 // cores without a model keep mr2 (0)
			if st.model != nil {
				st.mrLLC = math.Min(st.mr2, st.model.MissRatio(int64(st.occ)))
			}
		}
		// DRAM utilization from every core's fetch + writeback stream, and
		// the transfer-weighted mean batch size of the superposed miss
		// stream (each core's batch size read off its latency response at
		// its current LLC share — a core squeezed out of the LLC exposes
		// its bursty chase/gather population, a core with a large share
		// only its regular streams).
		var busy, batchNum float64
		for i := range states {
			st := &states[i]
			st.bwCore = st.refsPerIn / st.cpi * st.mrLLC * ref.LineSize * (1 + st.wbFrac)
			busy += st.bwCore
			batchNum += st.bwCore * st.resp.BatchWAt(st.occ/ref.LineSize)
		}
		util = busy / mach.DRAM.BytesPerCycle
		if util > maxBusUtil {
			util = maxBusUtil
		}
		batch := 1.0
		if busy > 0 {
			batch = batchNum / busy
		}
		// Queueing on the single FIFO channel: within-batch pile-up (the
		// transfers ahead of a random batch member) plus the M/D/1
		// cross-arrival term, amplified by batch synchronization — the
		// channel couples the cores' stall rounds, so batches from
		// different cores land in common busy periods that chain as
		// util·batch grows (capped for stability; see batchSyncCap).
		sync := util * batch
		if sync > batchSyncCap {
			sync = batchSyncCap
		}
		qBase := occCycles * util / (2 * (1 - util)) / (1 - sync)
		qSync := occCycles * (batch - 1) / (1 - sync)
		// The pile-up term is not shared evenly: a serialized chase
		// (B_i ≈ 1) only issues its next miss after the previous one
		// drained, so it samples the channel right after its own busy
		// period and rarely lands inside a pile-up; a bursty core's
		// misses arrive during the very backlogs they create. Weight each
		// core's share of the sync term by (1 − 1/B_i), normalized so the
		// transfer-weighted mean queue is unchanged.
		var wNorm float64
		if busy > 0 {
			for i := range states {
				st := &states[i]
				w := 1 - 1/st.resp.BatchWAt(st.occ/ref.LineSize)
				wNorm += st.bwCore / busy * w
			}
		}
		baseLat := float64(mach.LLCLat+mach.DRAM.ServiceLat) + occCycles
		// CPI from the telescoped depth response: the population that
		// misses L1 but hits L2 costs the L2 excess latency, the L2-miss/
		// LLC-hit population the LLC excess, and the population past the
		// core's current LLC share the full DRAM latency. Each term prices
		// its own far-reuse population (depth passes) at its level's
		// latency in excess of the L1 hit cost already inside hitCPI.
		l1 := float64(mach.L1Lat)
		dL1 := float64(mach.L1.Size / ref.LineSize)
		dL2 := float64(mach.L2.Size / ref.LineSize)
		lat2 := float64(mach.L2Lat) - l1
		lat3 := float64(mach.LLCLat) - l1
		for i := range states {
			st := &states[i]
			dOcc := st.occ / ref.LineSize
			queue := qBase
			if wNorm > 0 {
				queue += qSync * (1 - 1/st.resp.BatchWAt(dOcc)) / wNorm
			}
			memLat := baseLat + queue
			term2 := st.resp.ExtraAt(dL1, lat2) - st.resp.ExtraAt(dL2, lat2)
			term3 := st.resp.ExtraAt(dL2, lat3) - st.resp.ExtraAt(dOcc, lat3)
			termM := st.resp.ExtraAt(dOcc, memLat-l1)
			if term2 < 0 {
				term2 = 0
			}
			if term3 < 0 {
				term3 = 0
			}
			st.cpi = 0.5*st.cpi + 0.5*(st.hitCPI+term2+term3+termM)
		}
	}
	return util
}
