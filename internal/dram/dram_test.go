package dram

import (
	"testing"
	"testing/quick"
)

// mustNew builds a channel from a config the test knows is valid.
func mustNew(t *testing.T, cfg Config) *Channel {
	t.Helper()
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNewRejectsNonPositiveBandwidth(t *testing.T) {
	if _, err := New(Config{ServiceLat: 10}); err == nil {
		t.Error("New accepted zero bytes per cycle")
	}
	if _, err := New(Config{ServiceLat: 10, BytesPerCycle: -1}); err == nil {
		t.Error("New accepted negative bytes per cycle")
	}
}

func TestIdleLatency(t *testing.T) {
	ch := mustNew(t, Config{ServiceLat: 200, BytesPerCycle: 4})
	done := ch.Transfer(1000, 64)
	// occupancy = 64/4 = 16 cycles; completion = start + service + occupancy.
	if done != 1000+200+16 {
		t.Fatalf("completeAt = %d, want %d", done, 1000+200+16)
	}
}

func TestQueueingUnderLoad(t *testing.T) {
	ch := mustNew(t, Config{ServiceLat: 100, BytesPerCycle: 4})
	// Two back-to-back transfers at the same instant: the second waits for
	// the first's occupancy.
	d1 := ch.Transfer(0, 64)
	d2 := ch.Transfer(0, 64)
	if d2 <= d1 {
		t.Fatalf("second transfer not delayed: %d vs %d", d2, d1)
	}
	if got := d2 - d1; got != 16 {
		t.Fatalf("queue delay = %d, want 16", got)
	}
	if ch.Stats().QueueDelay != 16 {
		t.Fatalf("QueueDelay stat = %d, want 16", ch.Stats().QueueDelay)
	}
}

func TestBacklog(t *testing.T) {
	ch := mustNew(t, Config{ServiceLat: 10, BytesPerCycle: 1})
	if ch.Backlog(0) != 0 {
		t.Fatal("idle channel has backlog")
	}
	ch.Transfer(0, 64) // occupies 64 cycles
	if got := ch.Backlog(10); got != 54 {
		t.Fatalf("backlog = %d, want 54", got)
	}
	if ch.Backlog(100) != 0 {
		t.Fatal("backlog persists after drain")
	}
}

func TestBandwidthAccounting(t *testing.T) {
	ch := mustNew(t, Config{ServiceLat: 10, BytesPerCycle: 8})
	for i := 0; i < 10; i++ {
		ch.Transfer(int64(i*100), 64)
	}
	if ch.Stats().Bytes != 640 {
		t.Fatalf("bytes = %d, want 640", ch.Stats().Bytes)
	}
	if got := ch.AvgBandwidth(1000); got != 0.64 {
		t.Fatalf("AvgBandwidth = %g, want 0.64", got)
	}
	if ch.AvgBandwidth(0) != 0 {
		t.Fatal("AvgBandwidth(0) should be 0")
	}
}

func TestReset(t *testing.T) {
	ch := mustNew(t, Config{ServiceLat: 10, BytesPerCycle: 1})
	ch.Transfer(0, 64)
	ch.Reset()
	if ch.Stats() != (Stats{}) || ch.Backlog(0) != 0 {
		t.Fatal("reset did not clear state")
	}
}

// TestThroughputCap is a property: completions can never imply more bytes
// per cycle than the configured peak (measured once the channel saturates).
func TestThroughputCap(t *testing.T) {
	f := func(n uint8) bool {
		transfers := int(n)%100 + 10
		ch := mustNew(t, Config{ServiceLat: 50, BytesPerCycle: 4})
		var last int64
		for i := 0; i < transfers; i++ {
			last = ch.Transfer(0, 64) // all requests arrive at t=0
		}
		elapsed := last - 50 // subtract service latency of the last one
		if elapsed <= 0 {
			return false
		}
		got := float64(64*transfers) / float64(elapsed)
		return got <= 4.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
