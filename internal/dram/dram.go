// Package dram models the off-chip memory channel: a fixed service latency
// plus finite bandwidth with FIFO queueing. Bandwidth is the shared resource
// whose saturation drives the paper's multicore results, so every line moved
// between the chip and DRAM — demand fills, prefetch fills and writebacks —
// occupies channel time here.
package dram

import "fmt"

// Config describes a memory channel.
type Config struct {
	// ServiceLat is the idle-channel access latency in core cycles
	// (row access + transfer of the critical word).
	ServiceLat int64
	// BytesPerCycle is the peak channel bandwidth in bytes per core cycle
	// (peak GB/s divided by core GHz).
	BytesPerCycle float64
}

// Stats summarizes channel activity.
type Stats struct {
	Transfers  int64
	Bytes      int64
	QueueDelay int64 // cumulative cycles requests waited for the channel
	BusyCycles int64 // cumulative channel occupancy
}

// Channel is one off-chip memory channel shared by all cores of a socket.
type Channel struct {
	cfg       Config
	busyUntil int64
	stats     Stats
}

// New creates a channel.
func New(cfg Config) (*Channel, error) {
	if cfg.BytesPerCycle <= 0 {
		return nil, fmt.Errorf("dram: non-positive bandwidth %v", cfg.BytesPerCycle)
	}
	return &Channel{cfg: cfg}, nil
}

// Config returns the channel configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// Stats returns a copy of the channel statistics.
func (ch *Channel) Stats() Stats { return ch.stats }

// Transfer schedules moving bytes across the channel starting no earlier
// than now and returns the cycle at which the data is available (for reads)
// or committed (for writes). Requests are serviced FIFO: a busy channel
// delays the start, which is how bandwidth saturation turns into latency.
func (ch *Channel) Transfer(now int64, bytes int64) (completeAt int64) {
	start := now
	if ch.busyUntil > start {
		start = ch.busyUntil
	}
	occ := int64(float64(bytes)/ch.cfg.BytesPerCycle + 0.5)
	if occ < 1 {
		occ = 1
	}
	ch.busyUntil = start + occ
	ch.stats.Transfers++
	ch.stats.Bytes += int64(bytes)
	ch.stats.QueueDelay += start - now
	ch.stats.BusyCycles += occ
	return start + ch.cfg.ServiceLat + occ
}

// Backlog returns how many cycles of queued work the channel currently has
// at time now. Hardware prefetchers use it to throttle under contention.
func (ch *Channel) Backlog(now int64) int64 {
	if ch.busyUntil <= now {
		return 0
	}
	return ch.busyUntil - now
}

// Reset clears channel state and statistics.
func (ch *Channel) Reset() {
	ch.busyUntil = 0
	ch.stats = Stats{}
}

// AvgBandwidth returns the average bytes per cycle moved over elapsed
// cycles (0 if elapsed is 0).
func (ch *Channel) AvgBandwidth(elapsed int64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ch.stats.Bytes) / float64(elapsed)
}
