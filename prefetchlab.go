// Package prefetchlab is a reproduction of "A Case for Resource Efficient
// Prefetching in Multicores" (Khan, Sandberg, Hagersten — ICPP 2014): a
// profile-guided software prefetching framework built on low-overhead reuse
// and stride sampling, StatStack cache modeling, model-driven delinquent
// load identification (MDDLI) and cache bypassing, together with the full
// simulated substrate the evaluation needs — a register-level program
// representation, multi-level cache hierarchies with hardware prefetchers,
// a bandwidth-limited memory channel, and multicore timing simulation.
//
// The typical flow mirrors the paper's Figure 1:
//
//	prog := … // build a program with NewProgramBuilder, or pick a workload
//	prof, _ := prefetchlab.NewProfile(prog, prefetchlab.DefaultProfileConfig())
//	mach := prefetchlab.AMDPhenomII()
//	plan, _ := prof.Analyze(mach, prefetchlab.AnalyzeOptions{EnableNT: true})
//	fast, _ := plan.Apply(prog)
//	before, _ := prefetchlab.Simulate(prog, mach, prefetchlab.SimOptions{})
//	after, _ := prefetchlab.Simulate(fast, mach, prefetchlab.SimOptions{})
//
// The internal/experiments package (exposed through cmd/prefetchlab)
// regenerates every table and figure of the paper's evaluation.
package prefetchlab

import (
	"fmt"
	"strings"

	"prefetchlab/internal/core"
	"prefetchlab/internal/cpu"
	"prefetchlab/internal/isa"
	"prefetchlab/internal/machine"
	"prefetchlab/internal/memsys"
	"prefetchlab/internal/sampler"
	"prefetchlab/internal/statstack"
	"prefetchlab/internal/workloads"
)

// Program is a workload in the assembler-level representation the
// framework rewrites (see isa.Program).
type Program = isa.Program

// Builder constructs Programs; see isa.Builder for the instruction set.
type Builder = isa.Builder

// NewProgramBuilder starts a new program.
func NewProgramBuilder(name string) *Builder { return isa.NewBuilder(name) }

// Machine is a simulated evaluation platform.
type Machine = machine.Machine

// AMDPhenomII returns the paper's AMD platform (Table II).
func AMDPhenomII() Machine { return machine.AMDPhenomII() }

// IntelSandyBridge returns the paper's Intel platform (Table II).
func IntelSandyBridge() Machine { return machine.IntelSandyBridge() }

// Machines returns both platforms in paper order.
func Machines() []Machine { return machine.Both() }

// Plan is a software prefetching plan (insertions plus per-load audit).
type Plan = core.Plan

// LoadInfo is the per-load analysis record inside a Plan.
type LoadInfo = core.LoadInfo

// Result is one simulated execution (cycles, instructions, memory-system
// statistics).
type Result = cpu.Result

// ProfileConfig controls the sampling pass.
type ProfileConfig struct {
	// Period is the mean number of memory references between samples.
	// The paper samples 1 in 100,000 references of full SPEC runs; the
	// default here is denser to match the shorter synthetic runs.
	Period int64
	// Seed fixes the random sample placement.
	Seed int64
}

// DefaultProfileConfig returns the default sampling configuration.
func DefaultProfileConfig() ProfileConfig { return ProfileConfig{Period: 4096, Seed: 1} }

// Profile holds everything the analyses need about one program: the
// sampling output and the fitted StatStack model.
type Profile struct {
	Compiled *isa.Compiled
	Samples  *sampler.Samples
	Model    *statstack.Model
}

// NewProfile runs the integrated sampling pass (data reuse + strides, §III)
// over one functional execution of prog and fits the StatStack model (§IV).
func NewProfile(prog *Program, cfg ProfileConfig) (*Profile, error) {
	if cfg.Period <= 0 {
		cfg = DefaultProfileConfig()
	}
	c, err := isa.Compile(prog)
	if err != nil {
		return nil, err
	}
	s := sampler.New(sampler.Config{Period: cfg.Period, Seed: cfg.Seed})
	isa.Trace(c, s)
	samples := s.Finish()
	return &Profile{Compiled: c, Samples: samples, Model: statstack.Build(samples)}, nil
}

// AnalyzeOptions tunes the analysis for a target machine.
type AnalyzeOptions struct {
	// EnableNT enables the cache-bypass analysis (§VI-B); the paper's
	// headline configuration ("Soft. Pref.+NT").
	EnableNT bool
	// MissLat overrides the average latency per L1 miss (cycles); 0
	// estimates it from the modelled miss-ratio curves and the machine's
	// latencies, or measure it with Calibrate.
	MissLat float64
	// Delta overrides the average cycles per memory operation; 0 uses the
	// default (or measure it with Calibrate).
	Delta float64
}

// Analyze runs MDDLI, stride analysis, distance computation and (optionally)
// cache bypassing against a target machine, returning the prefetch plan.
func (p *Profile) Analyze(mach Machine, o AnalyzeOptions) (*Plan, error) {
	params := core.DefaultParams(mach.L1.Size, mach.L2.Size, mach.LLC.Size,
		mach.L2Lat, mach.LLCLat, mach.DRAM.ServiceLat+mach.LLCLat+14)
	params.EnableNT = o.EnableNT
	params.MissLat = o.MissLat
	params.Delta = o.Delta
	return core.Analyze(p.Compiled, p.Model, p.Samples, params), nil
}

// Calibrate measures the cost/benefit inputs of the analysis — average
// cycles per memory operation (Δ) and average latency per L1 miss — from a
// baseline timing run on the target machine, as the paper does with
// performance counters (§V, §VI-A).
func (p *Profile) Calibrate(mach Machine) (AnalyzeOptions, error) {
	res, err := Simulate(p.Compiled.Prog, mach, SimOptions{})
	if err != nil {
		return AnalyzeOptions{}, err
	}
	o := AnalyzeOptions{EnableNT: true}
	if res.MemRefs > 0 {
		o.Delta = float64(res.Cycles) / float64(res.MemRefs)
	}
	if res.Stats.LoadL1Misses > 0 {
		o.MissLat = float64(res.Stats.MissLatencyCycles) / float64(res.Stats.LoadL1Misses)
	}
	return o, nil
}

// Optimize is the one-call pipeline: profile prog, calibrate on mach,
// analyze with cache bypassing, and return the rewritten program alongside
// the plan.
func Optimize(prog *Program, mach Machine) (*Program, *Plan, error) {
	prof, err := NewProfile(prog, DefaultProfileConfig())
	if err != nil {
		return nil, nil, err
	}
	opts, err := prof.Calibrate(mach)
	if err != nil {
		return nil, nil, err
	}
	plan, err := prof.Analyze(mach, opts)
	if err != nil {
		return nil, nil, err
	}
	out, err := plan.Apply(prog)
	if err != nil {
		return nil, nil, err
	}
	return out, plan, nil
}

// SimOptions selects the simulated machine features for a run.
type SimOptions struct {
	// HWPrefetch enables the machine's hardware prefetch engines.
	HWPrefetch bool
}

// Simulate runs prog alone on one core of mach and returns the timing
// result (hardware prefetching off unless requested — the paper's
// baseline convention).
func Simulate(prog *Program, mach Machine, o SimOptions) (Result, error) {
	c, err := isa.Compile(prog)
	if err != nil {
		return Result{}, err
	}
	h, err := memsys.New(mach.MemConfig(1, o.HWPrefetch))
	if err != nil {
		return Result{}, err
	}
	return cpu.RunSingle(c, h)
}

// SimulateVerbose runs prog like Simulate and additionally returns the
// memory hierarchy's readable per-level summary: demand miss ratios, the
// off-chip traffic split between demand fetches, software/hardware prefetch
// fetches and writebacks, prefetch usefulness, and the DRAM channel totals.
func SimulateVerbose(prog *Program, mach Machine, o SimOptions) (Result, string, error) {
	c, err := isa.Compile(prog)
	if err != nil {
		return Result{}, "", err
	}
	h, err := memsys.New(mach.MemConfig(1, o.HWPrefetch))
	if err != nil {
		return Result{}, "", err
	}
	res, err := cpu.RunSingle(c, h)
	if err != nil {
		return Result{}, "", err
	}
	var b strings.Builder
	h.WriteSummary(&b)
	return res, b.String(), nil
}

// SimulateMix runs up to four programs in parallel on mach's cores with the
// paper's mixed-workload methodology (§VII-C: programs restart on
// completion until every one has finished once). Results report first
// completions.
func SimulateMix(progs []*Program, mach Machine, o SimOptions) ([]Result, error) {
	if len(progs) == 0 || len(progs) > mach.Cores {
		return nil, fmt.Errorf("prefetchlab: mix needs 1–%d programs, got %d", mach.Cores, len(progs))
	}
	cs := make([]*isa.Compiled, len(progs))
	for i, p := range progs {
		c, err := isa.Compile(p)
		if err != nil {
			return nil, err
		}
		cs[i] = c
	}
	h, err := memsys.New(mach.MemConfig(len(progs), o.HWPrefetch))
	if err != nil {
		return nil, err
	}
	return cpu.RunMix(h, cs)
}

// SimulateMixVerbose runs a mix like SimulateMix and additionally returns
// the shared hierarchy's per-level summary (per-core stats, private caches,
// shared LLC, DRAM channel).
func SimulateMixVerbose(progs []*Program, mach Machine, o SimOptions) ([]Result, string, error) {
	if len(progs) == 0 || len(progs) > mach.Cores {
		return nil, "", fmt.Errorf("prefetchlab: mix needs 1–%d programs, got %d", mach.Cores, len(progs))
	}
	cs := make([]*isa.Compiled, len(progs))
	for i, p := range progs {
		c, err := isa.Compile(p)
		if err != nil {
			return nil, "", err
		}
		cs[i] = c
	}
	h, err := memsys.New(mach.MemConfig(len(progs), o.HWPrefetch))
	if err != nil {
		return nil, "", err
	}
	rs, err := cpu.RunMix(h, cs)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	h.WriteSummary(&b)
	return rs, b.String(), nil
}

// Workload returns one of the paper's Table I benchmark programs by name
// (gcc, libquantum, lbm, mcf, omnetpp, soplex, astar, xalan, leslie3d,
// GemsFDTD, milc, cigar). Scale multiplies run length (1.0 = default).
func Workload(name string, scale float64) (*Program, error) {
	spec, err := workloads.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Build(workloads.Input{ID: 0, Scale: scale})
}

// WorkloadNames lists the Table I benchmarks in paper order.
func WorkloadNames() []string { return workloads.Names() }
